"""TPC-C-inspired contention workload over the Fabric reproduction.

Follows the template of "TPC-C on Hyperledger Fabric" (Klenik et al.):
the classic warehouse / district / customer / stock / order tables live
in public world state, and each NewOrder's order-lines are written to a
private data collection — so the contended traffic exercises the PDC
machinery (transient inputs, hash commits, gossip) the paper studies.

The contention is *structural*, exactly as in TPC-C: every NewOrder of a
district performs a read-modify-write of that district's ``next_o_id``
counter, so two NewOrders racing into the same block conflict on MVCC
and exactly one survives.  Stock updates follow TPC-C's restock rule
(quantity below 10 after the order → add 91), which keeps stock positive
forever — a NewOrder never fails at endorsement, only at validation.

:class:`TpccWorkloadGenerator` expands a tpcc-flavoured
:class:`~repro.simulation.config.SimulationConfig` into pure-data
:class:`~repro.simulation.workload.OpSpec` records: warehouse loads
first, then an open-loop Poisson/burst arrival stream of NewOrder /
Payment / StockLevel transactions produced by
:class:`~repro.workload.loadgen.OpenLoopGenerator`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.chaincode.api import Chaincode, require_args
from repro.chaincode.stub import ChaincodeStub
from repro.common.errors import ChaincodeError
from repro.core.attacks.ops import expected_policy_ok
from repro.simulation.workload import OpSpec
from repro.workload.loadgen import OpenLoopGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.config import SimulationConfig
    from repro.simulation.harness import SimNetwork

TPCC_CHAINCODE = "tpcc"

#: TPC-C restock rule: when an order would leave stock below this floor…
STOCK_FLOOR = 10
#: …the warehouse restocks by this much (the spec's ``+91``).
RESTOCK_QUANTITY = 91
#: Initial stock loaded per item.
INITIAL_STOCK = 50


class TpccContract(Chaincode):
    """The TPC-C-style chaincode: five tables keyed under one namespace.

    * ``warehouse:<w>``          — year-to-date payment total
    * ``district:<w>:<d>``       — the district's ``next_o_id`` counter
      (the hot key: every NewOrder read-modify-writes it)
    * ``customer:<w>:<d>:<c>``   — customer balance
    * ``stock:<w>:<i>``          — per-item stock quantity
    * ``order:<w>:<d>:<o>``      — one committed order row
    * private ``ol:<w>:<d>:<ref>`` — the order-line payload, written to a
      collection from the transient map (never on-chain in plaintext)
    """

    # -- keys -----------------------------------------------------------------
    @staticmethod
    def warehouse_key(w: str) -> str:
        return f"warehouse:{w}"

    @staticmethod
    def district_key(w: str, d: str) -> str:
        return f"district:{w}:{d}"

    @staticmethod
    def customer_key(w: str, d: str, c: str) -> str:
        return f"customer:{w}:{d}:{c}"

    @staticmethod
    def stock_key(w: str, i: str) -> str:
        return f"stock:{w}:{i}"

    @staticmethod
    def order_key(w: str, d: str, o_id: int) -> str:
        return f"order:{w}:{d}:{o_id:06d}"

    @staticmethod
    def order_line_key(w: str, d: str, ref: str) -> str:
        return f"ol:{w}:{d}:{ref}"

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _read_int(stub: ChaincodeStub, key: str, what: str) -> int:
        raw = stub.get_state(key)
        if raw is None:
            raise ChaincodeError(f"{what} {key!r} does not exist")
        try:
            return int(raw.decode("utf-8"))
        except ValueError as exc:
            raise ChaincodeError(f"{what} {key!r} is not numeric: {exc}") from exc

    # -- transactions ----------------------------------------------------------
    def load_warehouse(self, stub: ChaincodeStub, args: list) -> bytes:
        """``load_warehouse(w, districts, customers, items)`` — setup.

        Write-only population of one warehouse: ytd counter, every
        district's ``next_o_id``, customer balances and item stock.
        """
        require_args(args, 4, "a warehouse id, district, customer and item counts")
        w, districts, customers, items = args
        stub.put_state(self.warehouse_key(w), b"0")
        for d in range(1, int(districts) + 1):
            stub.put_state(self.district_key(w, str(d)), b"1")
            for c in range(1, int(customers) + 1):
                stub.put_state(self.customer_key(w, str(d), str(c)), b"0")
        for i in range(1, int(items) + 1):
            stub.put_state(self.stock_key(w, str(i)), str(INITIAL_STOCK).encode())
        return b""

    def new_order(self, stub: ChaincodeStub, args: list) -> bytes:
        """``new_order(collection, w, d, c, item, qty, olref)`` — the hot path.

        Read-modify-writes the district's ``next_o_id`` (the TPC-C hot
        key), checks the customer exists, updates stock under the restock
        rule, writes the order row, and — when a transient ``value`` is
        supplied — records the order-line privately in ``collection``.
        The ``olref`` suffix is client-chosen, so the private key is
        derivable from the args alone (the privacy invariants rely on
        that).  Returns the order id.
        """
        require_args(
            args, 7,
            "a collection, warehouse, district, customer, item, quantity and "
            "order-line ref",
        )
        collection, w, d, c, item, qty_text, olref = args
        qty = int(qty_text)

        o_id = self._read_int(stub, self.district_key(w, d), "district")
        stub.put_state(self.district_key(w, d), str(o_id + 1).encode())

        if stub.get_state(self.customer_key(w, d, c)) is None:
            raise ChaincodeError(f"customer {c!r} of {w}:{d} does not exist")

        quantity = self._read_int(stub, self.stock_key(w, item), "stock")
        if quantity - qty < STOCK_FLOOR:
            quantity += RESTOCK_QUANTITY
        quantity -= qty
        stub.put_state(self.stock_key(w, item), str(quantity).encode())

        stub.put_state(
            self.order_key(w, d, o_id), f"{c}:{item}:{qty}".encode()
        )

        value = stub.get_transient("value")
        if value is not None:
            if not collection:
                raise ChaincodeError("order-line value supplied without a collection")
            stub.put_private_data(collection, self.order_line_key(w, d, olref), value)
        return str(o_id).encode("utf-8")

    def payment(self, stub: ChaincodeStub, args: list) -> bytes:
        """``payment(w, d, c, amount)`` — warehouse ytd + customer balance.

        The warehouse ytd counter is the workload's second hot key: every
        payment of a warehouse read-modify-writes it.
        """
        require_args(args, 4, "a warehouse, district, customer and amount")
        w, d, c, amount_text = args
        amount = int(amount_text)
        ytd = self._read_int(stub, self.warehouse_key(w), "warehouse")
        stub.put_state(self.warehouse_key(w), str(ytd + amount).encode())
        balance = self._read_int(stub, self.customer_key(w, d, c), "customer")
        stub.put_state(self.customer_key(w, d, c), str(balance - amount).encode())
        return str(ytd + amount).encode("utf-8")

    def stock_level(self, stub: ChaincodeStub, args: list) -> bytes:
        """``stock_level(w, item)`` — read-only stock query."""
        require_args(args, 2, "a warehouse and an item id")
        w, item = args
        return str(self._read_int(stub, self.stock_key(w, item), "stock")).encode()


class TpccWorkloadGenerator:
    """Expands a tpcc config into warehouse loads + open-loop traffic.

    Same contract as :class:`~repro.simulation.workload.WorkloadGenerator`:
    the output is pure data (``OpSpec`` records), execution draws no
    randomness of its own, and every spec carries the generation-time
    policy-oracle verdict so the invariant layer can hold the validator
    to it under contended traffic too.
    """

    #: NewOrder / Payment / StockLevel weights (TPC-C is NewOrder-heavy).
    MIX = (("new_order", 0.6), ("payment", 0.3), ("stock_level", 0.1))

    def __init__(self, config: "SimulationConfig", sim: "SimNetwork") -> None:
        self._config = config
        self._sim = sim
        self._rng = random.Random(f"tpcc-workload-{config.seed}")
        self._channel = sim.network.channel
        self._features = sim.network.features

    # -- public API ------------------------------------------------------------
    def generate(self) -> list:
        config = self._config
        specs: list[OpSpec] = []
        for w in range(1, config.warehouses + 1):
            specs.append(self._load_spec(len(specs), w))
        traffic = max(0, config.ops - len(specs))
        arrivals = OpenLoopGenerator(
            seed=config.seed,
            rate=config.arrival_rate,
            clients=len(config.org_ids()),
            bursts=config.bursts,
            start=self.traffic_start(),
        ).arrivals(traffic)
        orgs = config.org_ids()
        for at, client_index in arrivals:
            org = orgs[client_index % len(orgs)]
            specs.append(self._traffic_spec(len(specs), at, org))
        return specs

    def traffic_start(self) -> float:
        """When the open-loop stream opens: after the loads have committed.

        Loads go through the full pipeline (endorse → batch-timeout cut →
        deliver), so traffic waits out two batch timeouts plus a few
        network hops — a NewOrder against an unloaded warehouse would
        just die at endorsement.
        """
        config = self._config
        return round(2 * config.batch_timeout + 8 * config.base_latency + 2.0, 3)

    # -- spec assembly ----------------------------------------------------------
    def _load_spec(self, index: int, w: int) -> OpSpec:
        # Stagger the loads slightly so their envelopes order deterministically.
        at = round(0.1 * w, 6)
        endorsers, ok = self._pick_endorsers(restrict_orgs=None, read_only=False)
        return OpSpec(
            index=index, at=at, kind="tpcc_load", chaincode_id=TPCC_CHAINCODE,
            function="load_warehouse",
            args=(str(w), str(self._config.districts_per_warehouse), "3", "5"),
            client_org=self._rng.choice(self._config.org_ids()),
            endorsers=endorsers, expect_policy_ok=ok,
        )

    def _traffic_spec(self, index: int, at: float, org: str) -> OpSpec:
        rng = self._rng
        kind = rng.choices(
            [k for k, _ in self.MIX], weights=[w for _, w in self.MIX]
        )[0]
        w = str(rng.randint(1, self._config.warehouses))
        d = str(rng.randint(1, self._config.districts_per_warehouse))
        c = str(rng.randint(1, 3))
        item = str(rng.randint(1, 5))

        if kind == "new_order":
            qty = str(rng.randint(1, 5))
            olref = f"{index:05d}"
            private = rng.random() < 0.7
            collection = "PDC1" if private else ""
            transient = (
                f"{c}:{item}:{qty}".encode() if private else None
            )
            restrict = self._org_members("PDC1") if private else None
            endorsers, ok = self._pick_endorsers(
                restrict_orgs=restrict, read_only=False,
                collections_written=("PDC1",) if private else (),
                collections_touched=("PDC1",) if private else (),
            )
            return OpSpec(
                index=index, at=at, kind="tpcc_new_order",
                chaincode_id=TPCC_CHAINCODE, function="new_order",
                args=(collection, w, d, c, item, qty, olref),
                client_org=org, endorsers=endorsers, expect_policy_ok=ok,
                transient_value=transient,
            )
        if kind == "payment":
            endorsers, ok = self._pick_endorsers(restrict_orgs=None, read_only=False)
            return OpSpec(
                index=index, at=at, kind="tpcc_payment",
                chaincode_id=TPCC_CHAINCODE, function="payment",
                args=(w, d, c, str(rng.randint(1, 500))),
                client_org=org, endorsers=endorsers, expect_policy_ok=ok,
            )
        endorsers, ok = self._pick_endorsers(restrict_orgs=None, read_only=True)
        return OpSpec(
            index=index, at=at, kind="tpcc_stock_level",
            chaincode_id=TPCC_CHAINCODE, function="stock_level",
            args=(w, item),
            client_org=org, endorsers=endorsers, expect_policy_ok=ok,
        )

    # -- endorser selection ------------------------------------------------------
    def _org_members(self, collection: str) -> set:
        for name, members, _ in self._config.collections():
            if name == collection:
                return set(members)
        return set()

    def _pick_endorsers(
        self,
        *,
        restrict_orgs: Optional[set],
        read_only: bool,
        collections_written: tuple = (),
        collections_touched: tuple = (),
    ) -> tuple:
        """Smallest org set the spec-level oracle accepts; full set otherwise."""
        rng = self._rng
        orgs = list(self._config.org_ids())
        if restrict_orgs is not None:
            orgs = [o for o in orgs if o in restrict_orgs]
        if not orgs:
            return (), False
        rng.shuffle(orgs)
        peers: list = []
        for org in orgs:
            peers.append(rng.choice(self._sim.peers_of(org)))
            if expected_policy_ok(
                self._channel, self._features, TPCC_CHAINCODE,
                [p.certificate for p in peers],
                read_only=read_only,
                has_public_writes=not read_only,
                collections_written=collections_written,
                collections_touched=collections_touched,
            ):
                return tuple(p.name for p in peers), True
        return tuple(p.name for p in peers), False
