"""Exception hierarchy for the whole library.

Every error raised by ``repro`` derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause.  The hierarchy
mirrors the places Hyperledger Fabric itself surfaces errors: endorsement,
validation, ordering, chaincode execution, identity/policy evaluation, and
the static analyzer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigError(ReproError):
    """A network, channel, chaincode or collection configuration is invalid."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, bad signature encoding)."""


class IdentityError(ReproError):
    """An identity could not be issued, deserialized, or validated."""


class PolicyError(ReproError):
    """A policy expression could not be parsed or evaluated."""


class PolicyNotSatisfiedError(PolicyError):
    """A set of signers does not satisfy a policy.

    Raised by evaluation helpers that are asked to *assert* satisfaction;
    plain evaluation returns a boolean instead.
    """


class LedgerError(ReproError):
    """World state / block store invariant violated."""


class KeyNotFoundError(LedgerError):
    """A requested key does not exist in the (private) world state.

    This is the error a PDC non-member endorser hits when it executes a
    private-data *read* (Use Case 1 of the paper): the original
    ``(key, value, version)`` is simply absent from its store.
    """

    def __init__(self, namespace: str, key: str, collection: str = "") -> None:
        self.namespace = namespace
        self.key = key
        self.collection = collection
        where = f"collection {collection!r} of " if collection else ""
        super().__init__(f"key {key!r} not found in {where}namespace {namespace!r}")


class ChaincodeError(ReproError):
    """A chaincode function raised or returned a failure response."""


class EndorsementError(ReproError):
    """A peer refused to endorse a proposal, or endorsement collection failed."""


class ProposalResponseMismatchError(EndorsementError):
    """Endorsers returned divergent results for the same proposal.

    The client-side check from the execution phase: all proposal responses
    must be byte-identical before a transaction may be assembled.
    """


class EndorsementTimeoutError(EndorsementError):
    """An endorsement plan ran out of time.

    Raised when outstanding endorsers failed to respond within the wave
    timeout (crashed, partitioned, or simply slower than the deadline) and
    the plan had no backups left to escalate to.
    """


class EndorsementPlanExhaustedError(EndorsementError):
    """Every candidate endorser of a plan was tried without success.

    The collected responses still do not satisfy the endorsement policy
    and at least one endorser failed outright, so the client cannot
    assemble a transaction.  The ``response`` attribute (when set) carries
    the last failure's chaincode response, mirroring how a plain
    :class:`EndorsementError` from a failed simulation does.
    """


class OrderingError(ReproError):
    """The ordering service rejected or failed to order an envelope."""


class MempoolFullError(OrderingError):
    """The submit pipeline is at its configured mempool bound.

    Open-loop load can otherwise grow the pending-transaction set without
    limit; a bounded runtime refuses the submission instead, and the
    caller is expected to back off and resubmit.  Carries the refused
    ``tx_id`` and the ``limit`` that was hit.
    """

    def __init__(self, tx_id: str, limit: int) -> None:
        self.tx_id = tx_id
        self.limit = limit
        super().__init__(
            f"transaction {tx_id} refused: mempool is at its bound "
            f"({limit} transactions in flight)"
        )


class PrunedBacklogError(OrderingError):
    """A delivery cursor asked for blocks below the pruned backlog prefix.

    The ordering service archives delivered blocks once every peer has
    sealed a snapshot past them; a consumer whose height predates the
    archive boundary cannot tail-replay and must bootstrap from a state
    snapshot instead.  Carries the requested ``height`` and the current
    ``offset`` (the first block still held in the hot backlog).
    """

    def __init__(self, height: int, offset: int) -> None:
        self.height = height
        self.offset = offset
        super().__init__(
            f"backlog cursor at height {height} predates the pruned prefix "
            f"(first hot block is {offset}); bootstrap from a snapshot"
        )


class SnapshotError(LedgerError):
    """A state snapshot failed verification or could not be applied.

    Raised when a snapshot package's signature set does not satisfy the
    channel policy, its payload does not reproduce the manifest digests,
    or a plaintext row does not match its committed hash — a bootstrapping
    peer must reject the package rather than trust unattested state.
    """


class RetryExhaustedError(ReproError):
    """An admission/retry policy ran out of retry budget.

    Raised by the client-side retry layer when a transaction could not be
    admitted (``MempoolFullError`` on every attempt) or kept aborting on
    MVCC conflicts until the budget was spent.  Carries the last attempt's
    ``tx_id``, the number of ``attempts`` made, and the ``reason`` string
    of the final failure.
    """

    def __init__(self, tx_id: str, attempts: int, reason: str) -> None:
        self.tx_id = tx_id
        self.attempts = attempts
        self.reason = reason
        super().__init__(
            f"transaction {tx_id} abandoned after {attempts} attempts: {reason}"
        )


class SchedulerError(ReproError):
    """The simulated-time runtime could not make progress.

    Raised when an event-loop run exhausts its event budget, or when a
    caller waits on a condition (e.g. a transaction commit) that the
    remaining scheduled events can never satisfy — typically because a
    fault model dropped the messages that would have produced it.
    """


class ValidationError(ReproError):
    """A block or transaction failed structural validation."""


class TransactionInvalidError(ReproError):
    """A submitted transaction was committed with an invalid flag."""

    def __init__(self, tx_id: str, code: str) -> None:
        self.tx_id = tx_id
        self.code = code
        super().__init__(f"transaction {tx_id} invalidated: {code}")


class GossipError(ReproError):
    """Private data dissemination failed to reach required peers."""


class AnalyzerError(ReproError):
    """The static analyzer could not scan a project source."""


class CorpusError(ReproError):
    """The synthetic corpus generator was given an unsatisfiable spec."""
