"""Public-key signatures for node identities.

Hyperledger Fabric signs with ECDSA over X.509 identities.  The protocol
logic reproduced here only needs a *publicly verifiable* signature scheme:
endorsers sign proposal responses, clients sign envelopes, and validators
verify both before evaluating endorsement policies.  We implement Schnorr
signatures over the RFC 3526 1536-bit MODP group using nothing but the
standard library, with deterministic (RFC 6979-style) nonces so every run
of the simulator is reproducible.

A signature is the pair ``(s, r)`` with ``r = g**k`` and ``s = k + x*e``
where ``e = H(r, y, message)`` — the classic commitment-carrying Schnorr
form.  Verification checks ``g**s == r * y**e``.  Carrying ``r`` (rather
than the challenge ``e``) is what makes **batch verification** possible:
all endorsements of a block are checked in a single randomized linear
combination, ``g**sum(c_i*s_i) == prod(r_i**c_i) * prod(y**sum(c_i*e_i))``,
with the 128-bit coefficients ``c_i`` drawn from a deterministic stream
bound to the batch content (so runs stay reproducible while a forger
cannot predict its coefficient).  Commitments are required to lie in the
order-q subgroup (a Jacobi-symbol pre-check, no modexp needed), so the
linear combination ranges over a prime-order group and the standard
small-exponent soundness bound applies.  A failing batch falls back to
bisection so an individual forgery is still pinpointed and rejected.

The substitution is documented in DESIGN.md: the attacks and defenses in
the paper do not depend on the curve, only on unforgeability and public
verifiability — both of which Schnorr over a safe-prime group provides,
in either single or batched verification.
"""

from __future__ import annotations

import functools
import hashlib
import hmac
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.multiexp import FixedBaseTable, WindowTableLRU, multiexp
from repro.common.tracing import PERF

# RFC 3526, group 5 (1536-bit MODP).  p is a safe prime: p = 2q + 1.
_P_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
)
P = int(_P_HEX, 16)
Q = (P - 1) // 2
# 4 = 2**2 is a quadratic residue mod p, hence generates the order-q subgroup.
G = 4

#: Bit width of the randomized batch-verification coefficients.  A batch
#: that verifies can hide a forgery only with probability ~2**-128 per
#: unpredictable coefficient — and a failing batch bisects down to
#: individual verification anyway.
BATCH_COEFF_BITS = 128


class SignatureError(Exception):
    """A signature failed to verify or could not be decoded."""


def _hash_to_int(*parts: bytes) -> int:
    digest = hashlib.sha256(b"||".join(parts)).digest()
    return int.from_bytes(digest, "big")


def _jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd n > 0 — O(len²) bit ops, no modexp."""
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def _in_subgroup(r: int) -> bool:
    """Membership in the order-q subgroup of Z_p* (p = 2q+1 safe prime).

    The subgroup of order q is exactly the quadratic residues, so a
    Jacobi symbol of +1 decides membership without a 1536-bit modexp.
    Verification requires it of every commitment ``r``: honest signers
    produce ``r = g**k`` (a residue by construction), while rejecting
    the order-2 component up front is what keeps the *batch* equation
    sound — in a prime-order group a randomized linear combination can
    only hide a forgery with probability ~2**-128, whereas elements
    with an order-2 part could cancel in pairs regardless of the
    coefficients.
    """
    return _jacobi(r, P) == 1


# ---------------------------------------------------------------------------
# Fast-path switches and precomputation
# ---------------------------------------------------------------------------

# REPRO_CRYPTO_FAST=0 routes every exponentiation through plain pow()
# (the naive baseline the ablation bench measures against).
_FAST_PATH = os.environ.get("REPRO_CRYPTO_FAST", "1") != "0"
# REPRO_VERIFY_CACHE=0 disables (verification-result) memoization.
_CACHE_ENABLED = os.environ.get("REPRO_VERIFY_CACHE", "1") != "0"


def set_fast_path(enabled: bool) -> None:
    """Toggle the windowed/multi-exp kernels (bench ablation hook)."""
    global _FAST_PATH
    _FAST_PATH = bool(enabled)


def fast_path_enabled() -> bool:
    return _FAST_PATH


def set_verify_cache(enabled: bool) -> None:
    """Toggle verification-result memoization (bench ablation hook)."""
    global _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    if not enabled:
        _VERIFY_CACHE.clear()


def verify_cache_enabled() -> bool:
    return _CACHE_ENABLED


_G_TABLE: Optional[FixedBaseTable] = None

#: Per-public-key window tables behind a real LRU (built only once a key
#: has verified enough signatures to amortize the precomputation).
_KEY_TABLES = WindowTableLRU(maxsize=96, build_after=6)


def _g_table() -> FixedBaseTable:
    """The generator's fixed-base table, built lazily once per process."""
    global _G_TABLE
    if _G_TABLE is None:
        _G_TABLE = FixedBaseTable(G, P, Q.bit_length())
    return _G_TABLE


def _g_pow(exponent: int) -> int:
    if _FAST_PATH:
        return _g_table().pow(exponent)
    PERF.modexp_full += 1
    return pow(G, exponent, P)


def _y_pow(y: int, exponent: int) -> int:
    if _FAST_PATH:
        return _KEY_TABLES.powmod(y, exponent, P, Q.bit_length())
    PERF.modexp_full += 1
    return pow(y, exponent, P)


#: Cache clearers registered by other layers (proposal-serialization
#: memos, endorser simulation caches).  They live here because
#: ``clear_caches`` is *the* test/bench isolation hook: a cache this
#: registry misses can bleed state across tests and mask invalidation
#: bugs.  Registration happens at module import of the owning layer —
#: those layers import crypto, never the reverse, so no cycle.
_CACHE_CLEARERS: list = []


def register_cache_clearer(clearer) -> None:
    """Hook a layer's cache reset into :func:`clear_caches`."""
    if clearer not in _CACHE_CLEARERS:
        _CACHE_CLEARERS.append(clearer)


def clear_caches() -> None:
    """Drop every process-wide cache (bench/test isolation hook).

    Besides the crypto-local caches this also invokes every registered
    clearer, so the proposal-serialization memos and the endorsers'
    simulation caches reset with the same call.
    """
    _VERIFY_CACHE.clear()
    _KEY_TABLES.clear()
    for clearer in _CACHE_CLEARERS:
        clearer()


def clear_verify_cache() -> None:
    """Drop only the verification-result memo, keeping window tables.

    Benches that replay identical identities across modes must clear the
    memo between modes (deterministic signatures would let a later mode
    reuse an earlier mode's verdicts) but should keep the fixed-base
    tables: they are a one-time substrate cost every mode shares, not
    part of what any mode ablates.
    """
    _VERIFY_CACHE.clear()


# ---------------------------------------------------------------------------
# Verification-result memoization
# ---------------------------------------------------------------------------

# Every peer re-verifies the same (creator, endorser) signatures during
# block validation, so a network of N peers repeats each 1536-bit
# verification N times.  Signatures are deterministic, so caching by
# (key, message digest, signature) is sound.  The cache is a bounded
# LRU — a full cache evicts the least recently used entry instead of
# clearing wholesale — keyed by the SHA-256 digest of the message, not
# the message bytes: 50k multi-KB endorsement payloads would otherwise
# stay pinned by the cache, and the rehash on a hit costs nothing next
# to even one windowed 1536-bit modexp.
_VERIFY_CACHE: OrderedDict = OrderedDict()
_VERIFY_CACHE_MAX = 50_000


def _cache_key(y: int, message: bytes, signature: bytes) -> tuple:
    return (y, hashlib.sha256(message).digest(), signature)


def _cache_get(key) -> Optional[bool]:
    if not _CACHE_ENABLED:
        return None
    cached = _VERIFY_CACHE.get(key)
    if cached is not None:
        _VERIFY_CACHE.move_to_end(key)
        PERF.verify_cache_hits += 1
    return cached


def _cache_put(key, value: bool) -> None:
    if not _CACHE_ENABLED:
        return
    _VERIFY_CACHE[key] = value
    _VERIFY_CACHE.move_to_end(key)
    if len(_VERIFY_CACHE) > _VERIFY_CACHE_MAX:
        _VERIFY_CACHE.popitem(last=False)


# ---------------------------------------------------------------------------
# Keys and signatures
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PublicKey:
    """Schnorr public key ``y = g^x mod p``."""

    y: int

    def to_bytes(self) -> bytes:
        return self.y.to_bytes((P.bit_length() + 7) // 8, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        return cls(int.from_bytes(data, "big"))

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check a signature produced by the matching private key.

        Accepts and rejects rather than raising so policy evaluation can
        simply skip invalid endorsements, the way Fabric's VSCC does.
        """
        key = _cache_key(self.y, message, signature)
        cached = _cache_get(key)
        if cached is not None:
            return cached
        result = self._verify_uncached(message, signature)
        _cache_put(key, result)
        return result

    def _verify_uncached(self, message: bytes, signature: bytes) -> bool:
        PERF.verify_individual += 1
        try:
            s, r = _decode_signature(signature)
        except SignatureError:
            return False
        if not (0 <= s < Q and 0 < r < P and _in_subgroup(r)):
            return False
        e = _hash_to_int(_int_bytes(r), self.to_bytes(), message) % Q
        return _g_pow(s) == r * _y_pow(self.y, e) % P


def _int_bytes(value: int) -> bytes:
    return value.to_bytes((P.bit_length() + 7) // 8, "big")


def _decode_signature(signature: bytes) -> tuple[int, int]:
    width = (P.bit_length() + 7) // 8
    if len(signature) != 2 * width:
        raise SignatureError(f"signature must be {2 * width} bytes, got {len(signature)}")
    s = int.from_bytes(signature[:width], "big")
    r = int.from_bytes(signature[width:], "big")
    return s, r


@dataclass(frozen=True)
class PrivateKey:
    """Schnorr private key (the exponent ``x``)."""

    x: int

    @classmethod
    def from_seed(cls, seed: bytes) -> "PrivateKey":
        """Derive a private key deterministically from a seed.

        The CA derives each identity's key from its enrollment id so that a
        simulator run is fully reproducible.
        """
        x = _hash_to_int(b"repro-keygen", seed) % Q
        return cls(x or 1)

    def public_key(self) -> PublicKey:
        return _derive_public_key(self.x)

    def sign(self, message: bytes) -> bytes:
        """Produce a deterministic Schnorr signature over ``message``."""
        k_seed = hmac.new(_int_bytes(self.x), message, hashlib.sha256).digest()
        k = int.from_bytes(k_seed, "big") % Q
        k = k or 1
        r = _g_pow(k)
        e = _hash_to_int(_int_bytes(r), self.public_key().to_bytes(), message) % Q
        s = (k + self.x * e) % Q
        width = (P.bit_length() + 7) // 8
        return s.to_bytes(width, "big") + r.to_bytes(width, "big")


@functools.lru_cache(maxsize=4096)
def _derive_public_key(x: int) -> PublicKey:
    # Signing re-derives the public key for the challenge hash; identities
    # sign thousands of messages per run, so memoise the fixed-base modexp.
    return PublicKey(_g_pow(x))


def generate_keypair(seed: bytes) -> tuple[PrivateKey, PublicKey]:
    """Deterministically derive a keypair from ``seed``."""
    private = PrivateKey.from_seed(seed)
    return private, private.public_key()


# ---------------------------------------------------------------------------
# Batch verification
# ---------------------------------------------------------------------------

def _batch_coefficients(decoded: dict, indices: Sequence[int], seed: bytes) -> dict:
    """Deterministic 128-bit coefficients bound to the batch transcript.

    The stream is seeded with a digest over every (key, message digest,
    signature) in the batch, Fiat–Shamir style: a forger fixing its
    signature before the batch is assembled cannot predict the
    coefficient multiplying it, yet two runs over the same block derive
    identical coefficients, keeping the simulator reproducible.
    """
    transcript = hashlib.sha256(b"repro-batch-transcript" + seed)
    for i in indices:
        y_bytes, msg_digest, signature, _s, _r = decoded[i]
        transcript.update(y_bytes)
        transcript.update(msg_digest)
        transcript.update(signature)
    root = transcript.digest()
    coefficients = {}
    for n, i in enumerate(indices):
        stream = hashlib.sha256(root + n.to_bytes(8, "big")).digest()
        c = int.from_bytes(stream[: BATCH_COEFF_BITS // 8], "big")
        # Any non-zero c < 2**128 < q is invertible in the order-q
        # subgroup (the pre-checks reject commitments outside it), so
        # the only coefficient to avoid is 0, which would drop its
        # signature from the combined equation entirely.
        coefficients[i] = c or 1
    return coefficients


def _batch_holds(decoded: dict, challenges: dict, indices: Sequence[int], seed: bytes) -> bool:
    """Evaluate one randomized-linear-combination batch equation."""
    PERF.batch_calls += 1
    coefficients = _batch_coefficients(decoded, indices, seed)
    s_combined = 0
    r_pairs = []
    e_by_key: dict[int, int] = {}
    for i in indices:
        _y_bytes, _digest, _sig, s, r = decoded[i]
        c = coefficients[i]
        s_combined = (s_combined + c * s) % Q
        r_pairs.append((r, c))
        y = challenges[i][0]
        e_by_key[y] = (e_by_key.get(y, 0) + c * challenges[i][1]) % Q
    lhs = _g_pow(s_combined)
    if _FAST_PATH:
        rhs = multiexp(r_pairs, P)
    else:
        rhs = 1
        for r, c in r_pairs:
            PERF.modexp_full += 1
            rhs = rhs * pow(r, c, P) % P
    for y, e_sum in e_by_key.items():
        rhs = rhs * _y_pow(y, e_sum) % P
    return lhs == rhs


def _screen(
    items: Sequence[tuple[PublicKey, bytes, bytes]],
) -> tuple[list, dict, dict, dict, list]:
    """Cache lookups + structural pre-checks before any batch equation.

    Returns ``(results, decoded, challenges, cache_keys, pending)``:
    items answered from the cache or rejected structurally are settled in
    ``results``; everything else is decoded and queued in ``pending``.
    """
    results: list[Optional[bool]] = [None] * len(items)
    decoded: dict = {}     # index -> (y_bytes, msg_digest, signature, s, r)
    challenges: dict = {}  # index -> (y, e)
    cache_keys: dict = {}  # index -> verify-cache key
    pending: list[int] = []
    for i, (public_key, message, signature) in enumerate(items):
        msg_digest = hashlib.sha256(message).digest()
        key = (public_key.y, msg_digest, signature)
        cache_keys[i] = key
        cached = _cache_get(key)
        if cached is not None:
            results[i] = cached
            continue
        try:
            s, r = _decode_signature(signature)
        except SignatureError:
            results[i] = False
            _cache_put(key, False)
            continue
        # The subgroup pre-check is what makes batching sound: every
        # surviving commitment lives in the prime-order-q subgroup, so
        # no order-2 components can cancel across a batch.
        if not (0 <= s < Q and 0 < r < P and _in_subgroup(r)):
            results[i] = False
            _cache_put(key, False)
            continue
        y_bytes = public_key.to_bytes()
        e = _hash_to_int(_int_bytes(r), y_bytes, message) % Q
        decoded[i] = (y_bytes, msg_digest, signature, s, r)
        challenges[i] = (public_key.y, e)
        pending.append(i)
    return results, decoded, challenges, cache_keys, pending


def _settle_serial(
    pending: list, decoded: dict, challenges: dict,
    results: list, cache_keys: dict, seed: bytes,
) -> None:
    """Settle pending indices by batch equation + bisection, in-process."""

    def settle(indices: list[int]) -> None:
        if len(indices) == 1:
            # Bisection leaf: decide the signature by the exact
            # individual equation, not a randomized one, so the result
            # is identical to what PublicKey.verify would return.
            i = indices[0]
            _y_bytes, _digest, _sig, s, r = decoded[i]
            y, e = challenges[i]
            PERF.verify_individual += 1
            result = _g_pow(s) == r * _y_pow(y, e) % P
            results[i] = result
            _cache_put(cache_keys[i], result)
            return
        if _batch_holds(decoded, challenges, indices, seed):
            _settle_valid(indices)
            return
        PERF.batch_bisections += 1
        mid = len(indices) // 2
        settle(indices[:mid])
        settle(indices[mid:])

    def _settle_valid(indices: list[int]) -> None:
        PERF.verify_batched += len(indices)
        for i in indices:
            results[i] = True
            _cache_put(cache_keys[i], True)

    settle(pending)


def _verify_batch_serial(
    items: Sequence[tuple[PublicKey, bytes, bytes]], seed: bytes = b""
) -> list[bool]:
    """The single-process reference path (also the worker-shard body)."""
    results, decoded, challenges, cache_keys, pending = _screen(items)
    if pending:
        _settle_serial(pending, decoded, challenges, results, cache_keys, seed)
    return [bool(flag) for flag in results]


#: Below this many cache-missing items a batch is settled in-process:
#: the per-shard fixed costs (transcript hash, generator modexp,
#: multi-exp base cost) would outweigh any split.
_SHARD_MIN_ITEMS = 8


def _verify_chunk_task(payload: tuple) -> tuple[list[bool], dict]:
    """Worker body: verify one shard of raw ``(y, message, signature)`` triples.

    Runs the complete reference pipeline — decode, subgroup pre-check,
    challenge derivation, batch equation, bisection — on its shard alone,
    so soundness never depends on another shard's contents.  Returns the
    per-item booleans plus the PERF-counter delta the shard produced
    (merged by the parent only when the shard ran in another process).
    Module-level and picklable-payload by construction: the process
    backend dispatches this exact function.
    """
    triples, seed = payload
    before = PERF.snapshot()
    items = [(PublicKey(y), message, signature) for y, message, signature in triples]
    flags = _verify_batch_serial(items, seed)
    return flags, PERF.delta_since(before)


def _try_sharded(
    items: Sequence[tuple[PublicKey, bytes, bytes]],
    seed: bytes,
    results: list,
    cache_keys: dict,
    pending: list,
) -> bool:
    """Shard the pending set across the execution backend's workers.

    Items are grouped by public key first — the batch equation aggregates
    challenge sums per distinct key, so splitting one key's signatures
    across shards would repeat its ``y``-exponentiation in every shard —
    then the groups are placed by the deterministic LPT plan shared with
    the cost model.  Returns False (caller settles serially) when the
    backend has one worker, the pending set is too small, or the plan
    degenerates to a single shard.  Per-shard verdicts are byte-identical
    to the serial reference regardless of the shard count: a valid shard
    settles all-True exactly like a valid batch, and an invalid one
    bisects down to the exact individual equation.
    """
    if len(pending) < _SHARD_MIN_ITEMS:
        return False
    # Function-level import: repro.runtime pulls in the client/gateway
    # stack, which imports this module.
    from repro.runtime.executor import current_backend, plan_shards

    backend = current_backend()
    if not backend.parallel:
        return False
    groups: dict[int, list[int]] = {}
    for i in pending:
        groups.setdefault(items[i][0].y, []).append(i)
    group_lists = list(groups.values())  # insertion order: deterministic
    plan = plan_shards([len(g) for g in group_lists], backend.workers)
    if len(plan) <= 1:
        return False
    shards = [
        [i for g in shard_bins for i in group_lists[g]] for shard_bins in plan
    ]
    payloads = [
        ([(items[i][0].y, items[i][1], items[i][2]) for i in shard], seed)
        for shard in shards
    ]
    outputs = backend.map(_verify_chunk_task, payloads)
    for shard, (flags, delta) in zip(shards, outputs):
        for i, flag in zip(shard, flags):
            results[i] = flag
            _cache_put(cache_keys[i], flag)
        if backend.remote:
            # Inline shards already incremented the shared PERF instance;
            # only cross-process work needs folding back in.
            PERF.merge(delta)
    return True


def verify_batch(
    items: Sequence[tuple[PublicKey, bytes, bytes]], seed: bytes = b""
) -> list[bool]:
    """Verify many ``(public_key, message, signature)`` triples at once.

    Returns one boolean per item, and always agrees with calling
    :meth:`PublicKey.verify` item by item: an all-valid batch is settled
    by a single multi-exponentiation; a failing batch is bisected until
    every forged signature is isolated by an individual verification.
    Results (including per-item results from bisection) land in the
    shared verification cache, so subsequent individual ``verify`` calls
    on the same triples are O(1) lookups.

    When the active :mod:`execution backend <repro.runtime.executor>` has
    more than one worker, a large enough batch is sharded across workers
    (grouped by public key, greedy-LPT placed) with the subgroup
    pre-check preserved per shard; the merged verdicts are identical to
    the serial reference for any worker count.
    """
    results, decoded, challenges, cache_keys, pending = _screen(items)
    if pending and not _try_sharded(items, seed, results, cache_keys, pending):
        _settle_serial(pending, decoded, challenges, results, cache_keys, seed)
    return [bool(flag) for flag in results]


# ---------------------------------------------------------------------------
# Offloaded signing
# ---------------------------------------------------------------------------

def _sign_task(payload: tuple) -> tuple[bytes, dict]:
    """Worker body: one deterministic Schnorr signature plus PERF delta."""
    x, message = payload
    before = PERF.snapshot()
    signature = PrivateKey(x).sign(message)
    return signature, PERF.delta_since(before)


def sign_with_backend(private_key: PrivateKey, message: bytes) -> bytes:
    """Sign through the active execution backend.

    Signatures are deterministic (RFC 6979-style nonces), so the bytes
    are identical wherever the modexp runs; a remote backend ships the
    exponent + message to a worker and merges the PERF delta back, the
    serial reference signs inline.
    """
    from repro.runtime.executor import current_backend

    backend = current_backend()
    if not backend.remote:
        return private_key.sign(message)
    (signature, delta), = backend.map(_sign_task, [(private_key.x, message)])
    PERF.merge(delta)
    return signature
