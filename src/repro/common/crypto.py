"""Public-key signatures for node identities.

Hyperledger Fabric signs with ECDSA over X.509 identities.  The protocol
logic reproduced here only needs a *publicly verifiable* signature scheme:
endorsers sign proposal responses, clients sign envelopes, and validators
verify both before evaluating endorsement policies.  We implement Schnorr
signatures over the RFC 3526 1536-bit MODP group using nothing but the
standard library, with deterministic (RFC 6979-style) nonces so every run
of the simulator is reproducible.

The substitution is documented in DESIGN.md: the attacks and defenses in
the paper do not depend on the curve, only on unforgeability and public
verifiability — both of which Schnorr over a safe-prime group provides.
"""

from __future__ import annotations

import functools
import hashlib
import hmac
from dataclasses import dataclass

# RFC 3526, group 5 (1536-bit MODP).  p is a safe prime: p = 2q + 1.
_P_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
)
P = int(_P_HEX, 16)
Q = (P - 1) // 2
# 4 = 2**2 is a quadratic residue mod p, hence generates the order-q subgroup.
G = 4


class SignatureError(Exception):
    """A signature failed to verify or could not be decoded."""


def _hash_to_int(*parts: bytes) -> int:
    digest = hashlib.sha256(b"||".join(parts)).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class PublicKey:
    """Schnorr public key ``y = g^x mod p``."""

    y: int

    def to_bytes(self) -> bytes:
        return self.y.to_bytes((P.bit_length() + 7) // 8, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        return cls(int.from_bytes(data, "big"))

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check a signature produced by the matching private key.

        Accepts and rejects rather than raising so policy evaluation can
        simply skip invalid endorsements, the way Fabric's VSCC does.
        """
        key = (self.y, hashlib.sha256(message).digest(), signature)
        cached = _VERIFY_CACHE.get(key)
        if cached is None:
            cached = self._verify_uncached(message, signature)
            if len(_VERIFY_CACHE) >= _VERIFY_CACHE_MAX:
                _VERIFY_CACHE.clear()
            _VERIFY_CACHE[key] = cached
        return cached

    def _verify_uncached(self, message: bytes, signature: bytes) -> bool:
        try:
            s, e = _decode_signature(signature)
        except SignatureError:
            return False
        if not (0 <= s < Q and 0 < e):
            return False
        # r' = g^s * y^{-e}.  By Fermat, y^{-e} = y^((p-1) - e mod (p-1)),
        # which costs one modexp instead of the two a modular inverse needs.
        r_prime = (pow(G, s, P) * pow(self.y, (-e) % (P - 1), P)) % P
        e_prime = _hash_to_int(_int_bytes(r_prime), self.to_bytes(), message) % Q
        return e_prime == e


# Every peer re-verifies the same (creator, endorser) signatures during block
# validation, so a network of N peers repeats each 1536-bit verification N
# times.  Signatures are deterministic, so caching by (key, message digest,
# signature) is sound; the cache is cleared wholesale if it ever fills.
_VERIFY_CACHE: dict = {}
_VERIFY_CACHE_MAX = 50_000


def _int_bytes(value: int) -> bytes:
    return value.to_bytes((P.bit_length() + 7) // 8, "big")


def _decode_signature(signature: bytes) -> tuple[int, int]:
    width = (P.bit_length() + 7) // 8
    if len(signature) != 2 * width:
        raise SignatureError(f"signature must be {2 * width} bytes, got {len(signature)}")
    s = int.from_bytes(signature[:width], "big")
    e = int.from_bytes(signature[width:], "big")
    return s, e


@dataclass(frozen=True)
class PrivateKey:
    """Schnorr private key (the exponent ``x``)."""

    x: int

    @classmethod
    def from_seed(cls, seed: bytes) -> "PrivateKey":
        """Derive a private key deterministically from a seed.

        The CA derives each identity's key from its enrollment id so that a
        simulator run is fully reproducible.
        """
        x = _hash_to_int(b"repro-keygen", seed) % Q
        return cls(x or 1)

    def public_key(self) -> PublicKey:
        return _derive_public_key(self.x)

    def sign(self, message: bytes) -> bytes:
        """Produce a deterministic Schnorr signature over ``message``."""
        k_seed = hmac.new(_int_bytes(self.x), message, hashlib.sha256).digest()
        k = int.from_bytes(k_seed, "big") % Q
        k = k or 1
        r = pow(G, k, P)
        e = _hash_to_int(_int_bytes(r), self.public_key().to_bytes(), message) % Q
        s = (k + self.x * e) % Q
        width = (P.bit_length() + 7) // 8
        return s.to_bytes(width, "big") + e.to_bytes(width, "big")


@functools.lru_cache(maxsize=4096)
def _derive_public_key(x: int) -> PublicKey:
    # Signing re-derives the public key for the challenge hash; identities
    # sign thousands of messages per run, so memoise the fixed-base modexp.
    return PublicKey(pow(G, x, P))


def generate_keypair(seed: bytes) -> tuple[PrivateKey, PublicKey]:
    """Deterministically derive a keypair from ``seed``."""
    private = PrivateKey.from_seed(seed)
    return private, private.public_key()
