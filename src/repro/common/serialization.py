"""Canonical byte serialization for signing and hashing.

Fabric serialises messages with protobuf; what matters for the protocol
logic is only that serialization is *canonical* — the same logical message
always produces the same bytes, so signatures and hashes are comparable
across nodes.  We implement a small deterministic encoder over the JSON
data model (dict / list / str / bytes / int / bool / None) instead of
pulling in protobuf.

``canonical_bytes`` is used everywhere a message is signed or hashed:
proposal responses, transaction envelopes, block data hashes.
"""

from __future__ import annotations

import base64
import json
from typing import Any

_BYTES_TAG = "__b64__"


def _encode(obj: Any) -> Any:
    if isinstance(obj, bytes):
        return {_BYTES_TAG: base64.b64encode(obj).decode("ascii")}
    if isinstance(obj, dict):
        return {str(k): _encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(v) for v in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    to_wire = getattr(obj, "to_wire", None)
    if callable(to_wire):
        return _encode(to_wire())
    raise TypeError(f"cannot canonically serialize {type(obj).__name__}")


def _decode(obj: Any) -> Any:
    if isinstance(obj, dict):
        if set(obj.keys()) == {_BYTES_TAG}:
            return base64.b64decode(obj[_BYTES_TAG])
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    return obj


def canonical_bytes(obj: Any) -> bytes:
    """Serialize ``obj`` to deterministic bytes.

    Dict keys are sorted, bytes values are base64-tagged, and objects that
    expose ``to_wire()`` are converted first.  Two logically equal messages
    always serialize to identical bytes — the property endorsement
    signature comparison relies on.
    """
    return json.dumps(_encode(obj), sort_keys=True, separators=(",", ":")).encode("utf-8")


def from_canonical_bytes(data: bytes) -> Any:
    """Inverse of :func:`canonical_bytes` (modulo tuples becoming lists)."""
    return _decode(json.loads(data.decode("utf-8")))


# ---------------------------------------------------------------------------
# Serialization-memo epoch
# ---------------------------------------------------------------------------

# Frozen protocol messages memoise their canonical bytes on the instance
# (``Proposal.header_bytes``, ``ProposalResponsePayload.bytes``, ...).
# Those memos live on objects scattered across a run, so "clear the
# serialization caches" cannot walk them — instead every memo is stamped
# with the epoch below and ignored once the epoch moves on.

_MEMO_EPOCH = 0


def memo_epoch() -> int:
    """The current serialization-memo generation."""
    return _MEMO_EPOCH


def clear_serialization_memos() -> None:
    """Invalidate every instance-level serialization memo at once."""
    global _MEMO_EPOCH
    _MEMO_EPOCH += 1


def _register_with_crypto() -> None:
    # crypto.clear_caches is the process-wide isolation hook; hooking the
    # epoch bump there keeps "clear everything" a single call.  Imported
    # lazily-at-module-load: crypto does not import this module's hook
    # machinery back, so the edge stays acyclic.
    from repro.common import crypto

    crypto.register_cache_clearer(clear_serialization_memos)


_register_with_crypto()
