"""Hashing helpers.

Hyperledger Fabric uses SHA-256 throughout: for private-data key/value
hashes, block data hashes, and the proposal-response hashing introduced by
the paper's New Feature 2.  We centralise it here so every module hashes
the same way.
"""

from __future__ import annotations

import hashlib


def sha256(data: bytes) -> bytes:
    """Return the raw SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the hex-encoded SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def hash_key(key: str) -> bytes:
    """Hash a private-data *key* the way Fabric stores it at non-members.

    Non-member peers only ever see ``(hash(key), hash(value), version)``.
    """
    return sha256(key.encode("utf-8"))


def hash_value(value: bytes) -> bytes:
    """Hash a private-data *value* the way Fabric stores it at non-members."""
    return sha256(value)


def chain_hash(prev_hash: bytes, data_hash: bytes) -> bytes:
    """Combine a block's predecessor hash with its data hash.

    Used to build the tamper-evident hash chain of the blockchain.
    """
    return sha256(prev_hash + data_hash)
