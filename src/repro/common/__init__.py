"""Shared substrate: errors, hashing, canonical serialization, signatures."""

from repro.common.crypto import PrivateKey, PublicKey, generate_keypair
from repro.common.errors import (
    AnalyzerError,
    ChaincodeError,
    ConfigError,
    CorpusError,
    CryptoError,
    EndorsementError,
    GossipError,
    IdentityError,
    KeyNotFoundError,
    LedgerError,
    OrderingError,
    PolicyError,
    PolicyNotSatisfiedError,
    ProposalResponseMismatchError,
    ReproError,
    TransactionInvalidError,
    ValidationError,
)
from repro.common.hashing import chain_hash, hash_key, hash_value, sha256, sha256_hex
from repro.common.serialization import canonical_bytes, from_canonical_bytes

__all__ = [
    "AnalyzerError",
    "ChaincodeError",
    "ConfigError",
    "CorpusError",
    "CryptoError",
    "EndorsementError",
    "GossipError",
    "IdentityError",
    "KeyNotFoundError",
    "LedgerError",
    "OrderingError",
    "PolicyError",
    "PolicyNotSatisfiedError",
    "ProposalResponseMismatchError",
    "ReproError",
    "TransactionInvalidError",
    "ValidationError",
    "chain_hash",
    "hash_key",
    "hash_value",
    "sha256",
    "sha256_hex",
    "canonical_bytes",
    "from_canonical_bytes",
    "PrivateKey",
    "PublicKey",
    "generate_keypair",
]
