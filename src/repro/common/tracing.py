"""Pipeline tracing: observe the Fig. 2 sequence as it happens.

Attach a :class:`Tracer` to a :class:`~repro.network.network.FabricNetwork`
and every transaction's journey is recorded step by step — proposal,
simulation, endorsement, gossip dissemination, ordering, delivery,
validation, commit — in the same order as the paper's sequence diagram.
Useful for debugging, teaching, and asserting pipeline behaviour in tests.

The module also hosts the process-wide :data:`PERF` counters fed by the
validation fast path (crypto kernel, batch verifier, shared VSCC memo,
per-phase wall clocks).  They are plain counters — reading or resetting
them never influences simulation behaviour, so determinism is preserved.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional

#: Every integer counter on :class:`PerfCounters`, in declaration order.
#: ``reset``/``snapshot``/``delta_since``/``merge`` all iterate this one
#: tuple so adding a counter cannot silently miss a bookkeeping path.
_COUNTER_FIELDS = (
    "verify_individual", "verify_batched", "verify_cache_hits",
    "batch_calls", "batch_bisections", "modexp_full",
    "modexp_windowed", "multiexp_calls", "table_builds",
    "vscc_memo_hits", "vscc_memo_misses",
    "endorse_simulations", "endorse_signatures", "endorse_cache_hits",
    "proposals_sent", "plan_escalations", "plan_timeouts",
    "plan_failures", "executor_tasks", "executor_remote_tasks",
    "reorder_batches", "reorder_displaced", "reorder_max_distance",
    "early_aborts",
    "gossip_pushes", "gossip_batched_payloads", "gossip_digest_rounds",
    "gossip_reconcile_pulls", "gossip_bytes",
)


@dataclass
class PerfCounters:
    """Crypto / validation perf counters (process-wide, see :data:`PERF`).

    ``modexp_full`` counts plain ``pow()`` calls on full-width exponents;
    ``modexp_windowed`` counts table-accelerated fixed-base evaluations;
    ``multiexp_calls`` counts Straus simultaneous multi-exponentiations.
    ``verify_*`` splits signature checks by how they were satisfied, and
    ``vscc_memo_*`` tracks the shared block-validation memo.  The
    ``endorse_*``/``proposals_sent``/``plan_*`` counters instrument the
    execution phase: chaincode simulations run vs answered from the
    peer-side simulation cache, payloads signed, proposals dispatched,
    and endorsement-plan escalations/timeouts/exhaustions.  Wall time
    spent inside each peer phase accumulates in ``phase_seconds``.
    """

    verify_individual: int = 0   # signatures verified one at a time
    verify_batched: int = 0      # signatures settled by a batch equation
    verify_cache_hits: int = 0   # signatures answered from the LRU cache
    batch_calls: int = 0         # batch equations evaluated
    batch_bisections: int = 0    # failed batches split to isolate forgeries
    modexp_full: int = 0
    modexp_windowed: int = 0
    multiexp_calls: int = 0
    table_builds: int = 0        # fixed-base window tables built
    vscc_memo_hits: int = 0
    vscc_memo_misses: int = 0
    endorse_simulations: int = 0   # chaincode simulations actually executed
    endorse_signatures: int = 0    # proposal-response payloads signed
    endorse_cache_hits: int = 0    # endorsements answered from the sim cache
    proposals_sent: int = 0        # proposals dispatched to endorsers
    plan_escalations: int = 0      # backup endorsers drafted into a plan
    plan_timeouts: int = 0         # endorsement waves that hit the timeout
    plan_failures: int = 0         # plans that exhausted every endorser
    executor_tasks: int = 0        # tasks run through an execution backend
    executor_remote_tasks: int = 0  # of those, dispatched to a worker process
    reorder_batches: int = 0       # batches through the conflict-aware pipeline
    reorder_displaced: int = 0     # emitted txs not at their arrival position
    reorder_max_distance: int = 0  # largest |emitted - arrival| displacement
    early_aborts: int = 0          # doomed txs dropped before block inclusion
    gossip_pushes: int = 0         # per-record private-rwset pushes
    gossip_batched_payloads: int = 0  # coalesced per-target gossip messages
    gossip_digest_rounds: int = 0  # anti-entropy digest exchanges completed
    gossip_reconcile_pulls: int = 0  # gaps filled by pull (reconciler + AE)
    gossip_bytes: int = 0          # private-rwset + digest wire bytes
    phase_seconds: dict = field(default_factory=dict)  # phase -> seconds

    def add_phase_time(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    @property
    def verifications(self) -> int:
        """Total signature checks answered, however they were satisfied."""
        return self.verify_individual + self.verify_batched + self.verify_cache_hits

    @property
    def modexps(self) -> int:
        return self.modexp_full + self.modexp_windowed

    def reset(self) -> None:
        for name in _COUNTER_FIELDS:
            setattr(self, name, 0)
        self.phase_seconds = {}

    # -- cross-process aggregation ------------------------------------------
    # Worker processes inherit (or rebuild) their own PERF instance; a task
    # snapshots the counters on entry and ships back the delta it produced,
    # which the parent merges so ``Tracer.summary(perf=True)`` reports work
    # done anywhere.  Inline (serial) tasks increment the shared instance
    # directly and must NOT be merged a second time.

    def snapshot(self) -> dict:
        """Copy of the integer counters (``phase_seconds`` excluded)."""
        return {name: getattr(self, name) for name in _COUNTER_FIELDS}

    def delta_since(self, snapshot: dict) -> dict:
        """Non-zero counter increments since ``snapshot``."""
        delta = {}
        for name in _COUNTER_FIELDS:
            diff = getattr(self, name) - snapshot.get(name, 0)
            if diff:
                delta[name] = diff
        return delta

    def merge(self, delta: dict) -> None:
        """Fold a worker's counter delta into this instance."""
        for name, value in delta.items():
            if name in _COUNTER_FIELDS and value:
                setattr(self, name, getattr(self, name) + value)

    def as_dict(self, prefix: str = "perf:") -> dict:
        """Flat snapshot, e.g. ``{"perf:modexp_full": 12, ...}``."""
        snapshot: dict = {
            f"{prefix}verifications": self.verifications,
            f"{prefix}verify_individual": self.verify_individual,
            f"{prefix}verify_batched": self.verify_batched,
            f"{prefix}verify_cache_hits": self.verify_cache_hits,
            f"{prefix}batch_calls": self.batch_calls,
            f"{prefix}batch_bisections": self.batch_bisections,
            f"{prefix}modexp_count": self.modexps,
            f"{prefix}modexp_full": self.modexp_full,
            f"{prefix}modexp_windowed": self.modexp_windowed,
            f"{prefix}multiexp_calls": self.multiexp_calls,
            f"{prefix}table_builds": self.table_builds,
            f"{prefix}vscc_memo_hits": self.vscc_memo_hits,
            f"{prefix}vscc_memo_misses": self.vscc_memo_misses,
            f"{prefix}endorse_simulations": self.endorse_simulations,
            f"{prefix}endorse_signatures": self.endorse_signatures,
            f"{prefix}endorse_cache_hits": self.endorse_cache_hits,
            f"{prefix}proposals_sent": self.proposals_sent,
            f"{prefix}plan_escalations": self.plan_escalations,
            f"{prefix}plan_timeouts": self.plan_timeouts,
            f"{prefix}plan_failures": self.plan_failures,
            f"{prefix}executor_tasks": self.executor_tasks,
            f"{prefix}executor_remote_tasks": self.executor_remote_tasks,
            f"{prefix}reorder_batches": self.reorder_batches,
            f"{prefix}reorder_displaced": self.reorder_displaced,
            f"{prefix}reorder_max_distance": self.reorder_max_distance,
            f"{prefix}early_aborts": self.early_aborts,
            f"{prefix}gossip_pushes": self.gossip_pushes,
            f"{prefix}gossip_batched_payloads": self.gossip_batched_payloads,
            f"{prefix}gossip_digest_rounds": self.gossip_digest_rounds,
            f"{prefix}gossip_reconcile_pulls": self.gossip_reconcile_pulls,
            f"{prefix}gossip_bytes": self.gossip_bytes,
        }
        for phase, seconds in sorted(self.phase_seconds.items()):
            snapshot[f"{prefix}{phase}_ms"] = round(seconds * 1000, 3)
        return snapshot


#: The process-wide counter instance every fast-path layer feeds.
PERF = PerfCounters()


@dataclass(frozen=True)
class TraceEvent:
    """One pipeline step."""

    seq: int
    actor: str  # "client", "peer0.Org1MSP", "orderer", ...
    action: str  # "send-proposal", "simulate", "endorse", ...
    tx_id: str
    detail: dict

    def __str__(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        tx = f" tx={self.tx_id[:8]}" if self.tx_id else ""
        return f"[{self.seq:>3}] {self.actor:<18} {self.action:<22}{tx}  {extras}"


@dataclass
class Tracer:
    """An append-only event log."""

    events: list[TraceEvent] = field(default_factory=list)
    _counter: int = 0

    def record(self, actor: str, action: str, tx_id: str = "", **detail: Any) -> None:
        self._counter += 1
        self.events.append(
            TraceEvent(
                seq=self._counter, actor=actor, action=action, tx_id=tx_id, detail=detail
            )
        )

    def actions(self, tx_id: Optional[str] = None) -> list[str]:
        """The action names, optionally filtered to one transaction."""
        return [
            event.action
            for event in self.events
            if tx_id is None or event.tx_id == tx_id or not event.tx_id
        ]

    def for_tx(self, tx_id: str) -> list[TraceEvent]:
        return [e for e in self.events if e.tx_id == tx_id]

    def summary(self, perf: bool = False) -> dict[str, int]:
        """Per-action event counts, e.g. ``{"validate+commit": 300, ...}``.

        With the event runtime interleaving hundreds of transactions, the
        raw log is too long to eyeball; the summary aggregates it into a
        quick pipeline-shape check (every tx endorsed twice, one
        ``enqueue-envelope`` each, blocks ≪ transactions, ...).

        With ``perf=True`` the snapshot additionally surfaces the
        process-wide :data:`PERF` counters as ``perf:*`` entries
        (verifications performed / batched / memo-hit, modexp count,
        per-phase wall time) so one call shows both the pipeline shape
        and what the validation fast path did for it.
        """
        counts: dict = dict(Counter(event.action for event in self.events))
        if perf:
            counts.update(PERF.as_dict())
        return counts

    def abort_summary(self) -> dict:
        """Per-transaction commit/abort breakdown, deduplicated.

        :meth:`summary` counts raw events, which over-counts aborts under
        contention: every peer records its own ``validate+commit`` event
        (N peers → N events per transaction) and a retried submission
        shows up once per attempt.  This view keys everything by tx id —
        each transaction contributes exactly one flag (every honest peer
        assigns the same one) and each mempool refusal is counted once
        per distinct refused transaction — so the totals line up with the
        ledger: ``committed + aborted`` equals the chain's transaction
        count, matching ``valid_tx_count`` / ``invalid_tx_count`` at any
        peer.

        MVCC/phantom aborts are additionally split by conflict *scope*
        (recorded by the traced delivery handler): ``mvcc_within_block``
        conflicts lose to an earlier write in the same block — the
        population intra-block reordering can rescue — while
        ``mvcc_cross_block`` conflicts were stale before the block was
        cut, which only orderer-side early abort addresses.
        ``early_aborted`` counts transactions the conflict-aware orderer
        dropped before block inclusion (never committed, so disjoint from
        the flag buckets).
        """
        mvcc_flags = ("MVCC_READ_CONFLICT", "PHANTOM_READ_CONFLICT")
        flags: dict = {}
        scopes: dict = {}
        rejected: set = set()
        early: set = set()
        for event in self.events:
            if event.action == "validate+commit" and event.tx_id:
                flags[event.tx_id] = event.detail.get("flag", "")
                if "scope" in event.detail:
                    scopes[event.tx_id] = event.detail["scope"]
            elif event.action == "mempool-reject" and event.tx_id:
                rejected.add(event.tx_id)
            elif event.action == "early-abort" and event.tx_id:
                early.add(event.tx_id)
        counts = Counter(flags.values())
        return {
            "committed": counts.get("VALID", 0),
            "aborted": sum(n for flag, n in counts.items() if flag != "VALID"),
            "by_flag": dict(counts),
            "mvcc_within_block": sum(
                1 for tx_id, flag in flags.items()
                if flag in mvcc_flags and scopes.get(tx_id) == "within-block"
            ),
            "mvcc_cross_block": sum(
                1 for tx_id, flag in flags.items()
                if flag in mvcc_flags and scopes.get(tx_id) == "cross-block"
            ),
            "early_aborted": len(early),
            "mempool_rejected": len(rejected),
        }

    def render(self) -> str:
        return "\n".join(str(event) for event in self.events)

    def clear(self) -> None:
        self.events = []
        self._counter = 0
