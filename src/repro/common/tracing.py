"""Pipeline tracing: observe the Fig. 2 sequence as it happens.

Attach a :class:`Tracer` to a :class:`~repro.network.network.FabricNetwork`
and every transaction's journey is recorded step by step — proposal,
simulation, endorsement, gossip dissemination, ordering, delivery,
validation, commit — in the same order as the paper's sequence diagram.
Useful for debugging, teaching, and asserting pipeline behaviour in tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One pipeline step."""

    seq: int
    actor: str  # "client", "peer0.Org1MSP", "orderer", ...
    action: str  # "send-proposal", "simulate", "endorse", ...
    tx_id: str
    detail: dict

    def __str__(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        tx = f" tx={self.tx_id[:8]}" if self.tx_id else ""
        return f"[{self.seq:>3}] {self.actor:<18} {self.action:<22}{tx}  {extras}"


@dataclass
class Tracer:
    """An append-only event log."""

    events: list[TraceEvent] = field(default_factory=list)
    _counter: int = 0

    def record(self, actor: str, action: str, tx_id: str = "", **detail: Any) -> None:
        self._counter += 1
        self.events.append(
            TraceEvent(
                seq=self._counter, actor=actor, action=action, tx_id=tx_id, detail=detail
            )
        )

    def actions(self, tx_id: Optional[str] = None) -> list[str]:
        """The action names, optionally filtered to one transaction."""
        return [
            event.action
            for event in self.events
            if tx_id is None or event.tx_id == tx_id or not event.tx_id
        ]

    def for_tx(self, tx_id: str) -> list[TraceEvent]:
        return [e for e in self.events if e.tx_id == tx_id]

    def summary(self) -> dict[str, int]:
        """Per-action event counts, e.g. ``{"validate+commit": 300, ...}``.

        With the event runtime interleaving hundreds of transactions, the
        raw log is too long to eyeball; the summary aggregates it into a
        quick pipeline-shape check (every tx endorsed twice, one
        ``enqueue-envelope`` each, blocks ≪ transactions, ...).
        """
        return dict(Counter(event.action for event in self.events))

    def render(self) -> str:
        return "\n".join(str(event) for event in self.events)

    def clear(self) -> None:
        self.events = []
        self._counter = 0
