"""Modular-exponentiation kernels behind the validation fast path.

Three techniques, all stdlib-only, all deterministic:

* :class:`FixedBaseTable` — fixed-base windowed precomputation.  The
  exponent is split into base-``2**w`` digits and every ``base**(d *
  2**(w*i))`` is precomputed, so one exponentiation costs one modular
  multiplication per digit and **zero squarings**.  Worth it for bases
  that recur: the group generator (every signature) and hot public keys
  (every endorsement by the same identity).
* :class:`WindowTableLRU` — per-base tables behind a real LRU.  Building
  a table costs the equivalent of a few plain ``pow()`` calls, so a base
  only earns its table after ``build_after`` uses; until then the cache
  counts uses and answers with plain ``pow()``.  Bounded by ``maxsize``
  with least-recently-used eviction.
* :func:`multiexp` — Straus/Shamir simultaneous multi-exponentiation:
  ``prod(base_i ** exp_i) mod m`` for many bases at once, sharing the
  squaring chain across all of them.  This is what makes the batched
  Schnorr check cheap: the per-signature work shrinks to a handful of
  multiplications by small (128-bit) coefficients.

Every kernel feeds :data:`repro.common.tracing.PERF` so benchmarks and
``Tracer.summary(perf=True)`` can report exact modexp counts.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.tracing import PERF

#: Window width (bits per digit) for the fixed-base tables.  Width 4
#: keeps the build cost low (15 multiplications per digit row) while
#: already replacing ~1536 squarings + ~300 multiplications of a plain
#: ``pow()`` with ~384 table multiplications.
DEFAULT_WINDOW = 4

#: Window width for Straus interleaving (small exponents, small tables).
STRAUS_WINDOW = 4


class FixedBaseTable:
    """Digit table for ``base ** e % modulus`` with a fixed base.

    ``rows[i][d] == base ** (d << (window * i)) % modulus``; an
    exponentiation is then the product of one entry per non-zero digit.
    """

    __slots__ = ("base", "modulus", "window", "_mask", "_rows")

    def __init__(self, base: int, modulus: int, bits: int, window: int = DEFAULT_WINDOW) -> None:
        self.base = base
        self.modulus = modulus
        self.window = window
        self._mask = (1 << window) - 1
        digits = max(1, -(-bits // window))
        rows = []
        cur = base % modulus
        for _ in range(digits):
            row = [1] * (1 << window)
            row[1] = cur
            for d in range(2, 1 << window):
                row[d] = row[d - 1] * cur % modulus
            rows.append(row)
            # base ** (2 ** (window * (i + 1))) for the next digit row.
            cur = row[self._mask] * cur % modulus
        self._rows = rows
        PERF.table_builds += 1

    def covers(self, exponent: int) -> bool:
        return exponent >= 0 and (exponent >> (self.window * len(self._rows))) == 0

    def pow(self, exponent: int) -> int:
        """``base ** exponent % modulus`` (falls back past table range)."""
        if not self.covers(exponent):
            PERF.modexp_full += 1
            return pow(self.base, exponent, self.modulus)
        PERF.modexp_windowed += 1
        modulus = self.modulus
        mask = self._mask
        window = self.window
        acc = 1
        i = 0
        while exponent:
            digit = exponent & mask
            if digit:
                acc = acc * self._rows[i][digit] % modulus
            exponent >>= window
            i += 1
        return acc


class WindowTableLRU:
    """Per-base :class:`FixedBaseTable` cache with LRU eviction.

    A base is answered with plain ``pow()`` until it has been asked for
    ``build_after`` times; the table build (a few plain-``pow``'s worth
    of multiplications) is only paid for bases that are demonstrably hot
    — in this simulator, the recurring endorser public keys.
    """

    def __init__(self, maxsize: int = 96, build_after: int = 6) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self.build_after = build_after
        # base -> int use-count (cold) | FixedBaseTable (hot)
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def table_count(self) -> int:
        return sum(1 for e in self._entries.values() if isinstance(e, FixedBaseTable))

    def has_table(self, base: int) -> bool:
        return isinstance(self._entries.get(base), FixedBaseTable)

    def clear(self) -> None:
        self._entries.clear()

    def powmod(self, base: int, exponent: int, modulus: int, bits: int) -> int:
        """``base ** exponent % modulus``, via a table once ``base`` is hot."""
        entry = self._entries.get(base)
        if isinstance(entry, FixedBaseTable):
            self._entries.move_to_end(base)
            return entry.pow(exponent)
        uses = (entry or 0) + 1
        if uses >= self.build_after:
            table = FixedBaseTable(base, modulus, bits)
            self._entries[base] = table
            self._entries.move_to_end(base)
            self._evict()
            return table.pow(exponent)
        self._entries[base] = uses
        self._entries.move_to_end(base)
        self._evict()
        PERF.modexp_full += 1
        return pow(base, exponent, modulus)

    def _evict(self) -> None:
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)


def multiexp(pairs, modulus: int, window: int = STRAUS_WINDOW) -> int:
    """``prod(base ** exp for base, exp in pairs) % modulus`` via Straus.

    All bases walk one shared squaring chain; each contributes one table
    multiplication per non-zero digit of its exponent.  Intended for the
    batch verifier's 128-bit random coefficients, where the shared chain
    is 128 squarings total instead of 128 per signature.
    """
    pairs = [(base % modulus, exp) for base, exp in pairs if exp > 0]
    if not pairs:
        return 1 % modulus
    PERF.multiexp_calls += 1
    mask = (1 << window) - 1
    tables = []
    for base, exp in pairs:
        row = [1] * (1 << window)
        row[1] = base
        for d in range(2, 1 << window):
            row[d] = row[d - 1] * base % modulus
        tables.append((row, exp))
    max_bits = max(exp.bit_length() for _, exp in pairs)
    digits = -(-max_bits // window)
    acc = 1
    for i in range(digits - 1, -1, -1):
        if acc != 1:
            acc = pow(acc, 1 << window, modulus)
        shift = i * window
        for row, exp in tables:
            digit = (exp >> shift) & mask
            if digit:
                acc = acc * row[digit] % modulus
    return acc
