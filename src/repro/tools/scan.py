"""CLI: static-analyze Fabric projects on disk.

Usage::

    python -m repro.tools.scan PATH [--single] [--verbose]

``PATH`` is a directory whose child directories are projects (the layout
``discover_projects`` expects), or with ``--single`` one project root.
Prints a per-project report and the aggregate study statistics — the
offline equivalent of the paper's GitHub scan.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.analyzer import FilesystemProject, analyze_project, discover_projects
from repro.core.analyzer.report import ProjectAnalysis
from repro.core.study import aggregate


def analysis_to_json(analysis: ProjectAnalysis) -> dict:
    """A machine-readable per-project report."""
    return {
        "name": analysis.name,
        "year": analysis.year,
        "pdc_kind": analysis.pdc_kind,
        "collections": [
            {
                "file": c.file_path,
                "name": c.name,
                "has_endorsement_policy": c.has_endorsement_policy,
            }
            for c in analysis.collections
        ],
        "implicit_files": analysis.implicit_files,
        "configtx_rule": analysis.configtx_rule,
        "uses_chaincode_level_policy": analysis.uses_chaincode_level_policy,
        "injection_vulnerable": analysis.potentially_vulnerable_to_injection,
        "read_leaks": analysis.read_leak_functions,
        "write_leaks": analysis.write_leak_functions,
    }


def _describe(analysis: ProjectAnalysis, verbose: bool) -> str:
    if not analysis.is_pdc:
        return f"{analysis.name}: no PDC usage"
    policy = "collection-level" if analysis.has_collection_level_policy else "chaincode-level"
    flags = []
    if analysis.potentially_vulnerable_to_injection:
        flags.append("INJECTION-VULNERABLE")
    if analysis.has_read_leak:
        flags.append("READ-LEAK")
    if analysis.has_write_leak:
        flags.append("WRITE-LEAK")
    line = f"{analysis.name}: {analysis.pdc_kind} PDC, {policy} policy"
    if analysis.configtx_rule:
        line += f", default policy {analysis.configtx_rule!r}"
    if flags:
        line += "  [" + ", ".join(flags) + "]"
    if verbose:
        for path, functions in sorted(analysis.read_leak_functions.items()):
            line += f"\n    read-leak  {path}: {', '.join(functions)}"
        for path, functions in sorted(analysis.write_leak_functions.items()):
            line += f"\n    write-leak {path}: {', '.join(functions)}"
    return line


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.scan", description="Static analyzer for Fabric PDC usage"
    )
    parser.add_argument("path", help="directory of projects (or one project with --single)")
    parser.add_argument("--single", action="store_true", help="PATH is one project root")
    parser.add_argument("--verbose", action="store_true", help="list leaky functions per file")
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    args = parser.parse_args(argv)

    if args.single:
        projects = [FilesystemProject(args.path)]
    else:
        projects = discover_projects(args.path)
    if not projects:
        print(f"no projects found under {args.path}", file=sys.stderr)
        return 1

    analyses = [analyze_project(project) for project in projects]
    if args.json:
        print(json.dumps([analysis_to_json(a) for a in analyses], indent=2))
        return 0
    for analysis in analyses:
        print(_describe(analysis, args.verbose))

    results = aggregate(analyses)
    print()
    print(f"scanned {results.total_projects} project(s): "
          f"{results.explicit_count} explicit PDC, {results.implicit_count} implicit")
    if results.explicit_count:
        print(f"  injection-vulnerable (chaincode-level policy): "
              f"{results.chaincode_level_count} ({results.injection_vulnerable_pct:.2f}%)")
        print(f"  leaking PDC through payloads: "
              f"{results.leak_any_count} ({results.leakage_pct:.2f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
