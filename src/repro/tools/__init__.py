"""Command-line tools.

* ``python -m repro.tools.scan <dir>`` — run the static analyzer over a
  directory of Fabric projects (each child directory = one project).
* ``python -m repro.tools.matrix`` — regenerate Table II.
* ``python -m repro.tools.study`` — regenerate the GitHub study (Figs 7-10).
* ``python -m repro.tools.overhead`` — regenerate Fig. 11.
* ``python -m repro.tools.collusion`` — analyse collusion thresholds for
  the §V preset networks.
* ``python -m repro.tools.simulate`` — deterministic simulation sweep:
  randomized workloads + fault schedules with global invariant checks,
  seed replay and trace shrinking.
"""
