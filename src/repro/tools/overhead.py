"""CLI: regenerate Fig. 11 (defense overhead).

Usage::

    python -m repro.tools.overhead [--runs N]
"""

from __future__ import annotations

import argparse

from repro.bench.latency import measure_fig11, render_fig11


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.overhead",
        description="Measure execution/validation latency, original vs modified framework",
    )
    parser.add_argument("--runs", type=int, default=100, help="runs per cell (paper: 100)")
    args = parser.parse_args(argv)

    results = measure_fig11(
        runs=args.runs, progress=lambda msg: print(f"measuring: {msg}")
    )
    print()
    print(render_fig11(results))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
