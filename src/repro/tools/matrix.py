"""CLI: regenerate Table II (attack & defense matrix).

Usage::

    python -m repro.tools.matrix [--quiet]
"""

from __future__ import annotations

import argparse

from repro.core.attacks import run_attack_matrix


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.matrix", description="Run the Table II attack/defense evaluation"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress per-cell progress")
    args = parser.parse_args(argv)

    progress = None if args.quiet else (lambda msg: print(f"running: {msg}"))
    matrix = run_attack_matrix(progress=progress)
    print()
    print(matrix.render())
    mismatches = matrix.mismatches()
    if mismatches:
        print("\nDEVIATIONS FROM THE PAPER:")
        for row, column, expected, measured in mismatches:
            print(f"  {row} / {column}: paper {expected}, measured {measured}")
        return 1
    print("\nevery cell reproduces the paper's Table II")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
