"""CLI: collusion-threshold analysis for the §V preset networks.

Usage::

    python -m repro.tools.collusion [--policy TEXT] [--orgs N] [--members M ...]

By default prints the analysis for both presets (3-org MAJORITY and
5-org 2OutOf5); a custom policy over ``--orgs`` organizations with
``--members`` PDC member numbers can be analysed too.
"""

from __future__ import annotations

import argparse

from repro.core.attacks import analyze_collusion
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.presets import five_org_network, three_org_network


def _custom(policy: str, org_count: int, member_nums: list[int]) -> None:
    orgs = [Organization(f"Org{i}MSP") for i in range(1, org_count + 1)]
    channel = ChannelConfig(channel_id="custom", organizations=orgs)
    members = ", ".join(f"'Org{i}MSP.member'" for i in member_nums)
    channel.deploy_chaincode(
        "cc",
        endorsement_policy=policy,
        collections=[CollectionConfig(name="PDC", policy=f"OR({members})")],
    )
    print(analyze_collusion(channel, "cc", "PDC").summary())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.collusion",
        description="Minimum colluding organizations per endorsement policy (§IV-A5)",
    )
    parser.add_argument("--policy", help="custom chaincode-level policy text")
    parser.add_argument("--orgs", type=int, default=5, help="org count for --policy")
    parser.add_argument(
        "--members", type=int, nargs="+", default=[1, 2], help="PDC member org numbers"
    )
    args = parser.parse_args(argv)

    if args.policy:
        _custom(args.policy, args.orgs, args.members)
        return 0

    print("== 3 orgs, MAJORITY Endorsement, PDC1 = {org1, org2} ==")
    net3 = three_org_network()
    print(analyze_collusion(net3.network.channel, "pdccc", "PDC1").summary())
    print()
    print("== 5 orgs, 2OutOf5, PDC1 = {org1, org2} ==")
    net5 = five_org_network()
    print(analyze_collusion(net5.network.channel, "pdccc", "PDC1").summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
