"""CLI: print the live Fig. 2 sequence for one transaction.

Usage::

    python -m repro.tools.trace [--private | --public]

Stands up the 3-org preset with tracing enabled, runs one transaction,
and prints each pipeline step in order — the executable version of the
paper's sequence diagram.
"""

from __future__ import annotations

import argparse

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.common.tracing import Tracer
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace", description="Trace one transaction through the pipeline"
    )
    parser.add_argument(
        "--public", action="store_true",
        help="trace a public-data transaction (default: private)",
    )
    args = parser.parse_args(argv)

    orgs = [Organization(f"Org{i}MSP") for i in (1, 2, 3)]
    channel = ChannelConfig(channel_id="traced", organizations=orgs)
    channel.deploy_chaincode("assetcc")
    channel.deploy_chaincode(
        "pdccc",
        collections=[
            CollectionConfig(
                name="PDC1",
                policy="OR('Org1MSP.member', 'Org2MSP.member')",
                required_peer_count=0,
            )
        ],
    )
    tracer = Tracer()
    network = FabricNetwork(channel=channel, tracer=tracer)
    for org in orgs:
        network.add_peer(org.msp_id)
    network.install_chaincode("assetcc", AssetContract())
    network.install_chaincode("pdccc", PrivateAssetContract())
    client = network.client("Org1MSP")
    endorsers = network.default_endorsers()[:2]

    if args.public:
        print("tracing: PUBLIC data transaction (Fig. 2, workflow I)\n")
        result = client.submit_transaction(
            "assetcc", "create_asset", ["a1", "100"], endorsing_peers=endorsers
        )
    else:
        print("tracing: PRIVATE data transaction (Fig. 2, workflow II)\n")
        result = client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k1"],
            transient={"value": b"12"}, endorsing_peers=endorsers,
        )
    print(tracer.render())
    print(f"\nfinal status: {result.status.value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
