"""CLI: regenerate the GitHub study (Figs 7-10).

Usage::

    python -m repro.tools.study [--seed N] [--materialize DIR [--limit K]]

``--materialize`` additionally writes (a sample of) the synthetic corpus
to disk so it can be rescanned with ``repro.tools.scan``.
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.core.corpus import PAPER_SPEC, generate_corpus
from repro.core.study import run_study


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.study", description="Run the §V-C GitHub study on a synthetic corpus"
    )
    parser.add_argument("--seed", type=int, default=PAPER_SPEC.seed)
    parser.add_argument("--materialize", metavar="DIR", help="write the corpus to DIR")
    parser.add_argument("--limit", type=int, default=200, help="projects to materialise")
    args = parser.parse_args(argv)

    spec = dataclasses.replace(PAPER_SPEC, seed=args.seed)
    corpus = generate_corpus(spec)
    results = run_study(corpus.projects)
    print(results.render_all())
    if args.materialize:
        root = corpus.materialize(args.materialize, limit=args.limit)
        print(f"\nmaterialised {min(args.limit, len(corpus.projects))} projects under {root}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
