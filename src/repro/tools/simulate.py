"""Deterministic simulation sweep: ``python -m repro.tools.simulate``.

Runs ``--seeds`` randomized simulations of ``--ops`` operations each and
checks every global invariant at block boundaries and quiescence.  On a
failure the trace is greedily shrunk (ddmin) to a minimal still-failing
trace, written as a JSON trace plus a standalone repro script.

Examples::

    python -m repro.tools.simulate --seeds 25 --ops 500
    python -m repro.tools.simulate --seeds 5 --ops 100 \\
        --weaken skip-endorsement-policy --trace-dir /tmp/traces
    python -m repro.tools.simulate --replay /tmp/traces/trace-seed3.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

from repro.runtime.executor import resolve_executor_kind
from repro.simulation.config import SimulationConfig
from repro.storage import BACKEND_KINDS
from repro.simulation.harness import (
    WEAKENERS,
    execute,
    generate,
    run_gossip_equivalence,
    run_parallel_equivalence,
)
from repro.simulation.shrink import (
    load_trace,
    render_repro_script,
    shrink_failing_run,
)


def _executor_spec(spec: str) -> str:
    """argparse type: validate an executor spec eagerly."""
    try:
        return resolve_executor_kind(spec)
    except Exception as exc:
        raise argparse.ArgumentTypeError(str(exc))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.simulate",
        description="randomized workload + fault simulation with invariant checks",
    )
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of seeds to sweep (default 10)")
    parser.add_argument("--ops", type=int, default=200,
                        help="operations per seed (default 200)")
    parser.add_argument("--seed-base", type=int, default=1,
                        help="first seed of the sweep (default 1)")
    parser.add_argument("--weaken", choices=sorted(WEAKENERS), default=None,
                        help="deliberately sabotage the system under test "
                             "(the invariants must then fail)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    parser.add_argument("--shrink-budget", type=int, default=120,
                        help="max replays the shrinker may spend per failure")
    parser.add_argument("--trace-dir", type=Path, default=None,
                        help="where to write failing traces/repro scripts "
                             "(default: current directory)")
    parser.add_argument("--replay", type=Path, default=None,
                        help="replay a saved JSON trace instead of sweeping")
    parser.add_argument("--backend", choices=list(BACKEND_KINDS), default=None,
                        help="peer-ledger storage engine (default: the "
                             "REPRO_STATE_BACKEND env var, else memory)")
    parser.add_argument("--executor", type=_executor_spec, default=None,
                        help="execution backend spec, e.g. serial or process:4 "
                             "(default: the REPRO_EXECUTOR env var, else serial)")
    parser.add_argument("--snapshot-every", type=int, default=None,
                        help="peer snapshot checkpoint cadence in blocks; "
                             "enables the snapshot-equivalence invariant "
                             "(default: the REPRO_SNAPSHOT_EVERY env var, "
                             "else off)")
    parser.add_argument("--prune", action="store_true",
                        help="archive pre-snapshot blocks once a snapshot "
                             "seals (peer chains and the orderer backlog; "
                             "default: the REPRO_PRUNE env var, else off)")
    parser.add_argument("--reorder", action="store_true",
                        help="conflict-aware ordering: reorder each batch "
                             "along its conflict graph and early-abort "
                             "provably doomed transactions; enables the "
                             "reorder-soundness invariant (default: the "
                             "REPRO_REORDER env var, else off)")
    parser.add_argument("--gossip-batch", action="store_true",
                        help="batched gossip fast path: coalesce each "
                             "endorsement's private rwsets into one payload "
                             "per target peer (default: the "
                             "REPRO_GOSSIP_BATCH env var, else off)")
    parser.add_argument("--anti-entropy-every", type=float, default=None,
                        help="digest-driven anti-entropy cadence in simulated "
                             "seconds; 0 disables the loop (default: the "
                             "REPRO_ANTI_ENTROPY_EVERY env var, else off)")
    parser.add_argument("--workload", choices=["mixed", "tpcc"], default="mixed",
                        help="workload family: the mixed asset/PDC mix, or the "
                             "contended TPC-C-style mix with open-loop arrivals "
                             "and the admission/retry policy (default mixed)")
    parser.add_argument("--check-equivalence", action="store_true",
                        help="run every seed twice — serial reference vs "
                             "process pool — and fail on any byte-level "
                             "divergence (the parallel-equivalence invariant)")
    parser.add_argument("--equiv-workers", type=int, default=4,
                        help="worker count for the parallel leg of "
                             "--check-equivalence (default 4)")
    parser.add_argument("--check-gossip-equivalence", action="store_true",
                        help="run every seed twice — per-record reference "
                             "dissemination vs the batched fast path, same "
                             "anti-entropy cadence — and fail on any "
                             "byte-level divergence (the gossip-equivalence "
                             "invariant)")
    args = parser.parse_args(argv)

    if args.replay is not None:
        return _replay(args.replay, args.weaken, args.backend, args.executor)

    if args.check_equivalence:
        return _check_equivalence(args)

    if args.check_gossip_equivalence:
        return _check_gossip_equivalence(args)

    failures = 0
    started = time.time()
    for seed in range(args.seed_base, args.seed_base + args.seeds):
        seed_started = time.time()
        config = SimulationConfig.generate_workload(args.workload, seed, args.ops)
        if args.backend is not None:
            config = dataclasses.replace(config, state_backend=args.backend)
        if args.executor is not None:
            config = dataclasses.replace(config, executor=args.executor)
        if args.snapshot_every is not None:
            config = dataclasses.replace(config, snapshot_every=args.snapshot_every)
        if args.prune:
            config = dataclasses.replace(config, prune=True)
        if args.reorder:
            config = dataclasses.replace(config, reorder=True)
        if args.gossip_batch:
            config = dataclasses.replace(config, gossip_batch=True)
        if args.anti_entropy_every is not None:
            config = dataclasses.replace(
                config, anti_entropy_every=args.anti_entropy_every)
        ops, fault_actions = generate(config)
        report = execute(config, ops, fault_actions, weaken=args.weaken)
        print(f"{report.summary()} ({time.time() - seed_started:.1f}s)")
        if report.ok:
            continue
        failures += 1
        for violation in report.violations[:8]:
            print(f"    {violation}")
        if len(report.violations) > 8:
            print(f"    ... and {len(report.violations) - 8} more")
        if not args.no_shrink:
            _shrink_and_dump(config, ops, fault_actions, args)

    elapsed = time.time() - started
    print(f"{args.seeds} seeds, {failures} failing ({elapsed:.1f}s total)")
    return 1 if failures else 0


def _check_equivalence(args) -> int:
    """Sweep seeds through the parallel-equivalence invariant.

    A failing seed dumps its (config, ops, faults) triple — replayable
    with ``--replay`` under either executor — plus the equivalence
    violations, as ``equivalence-seed{N}.json`` for artifact upload.
    """
    failures = 0
    started = time.time()
    for seed in range(args.seed_base, args.seed_base + args.seeds):
        seed_started = time.time()
        report = run_parallel_equivalence(
            seed, args.ops, workers=args.equiv_workers, weaken=args.weaken,
            workload=args.workload,
            snapshot_every=args.snapshot_every,
            prune=True if args.prune else None,
            reorder=True if args.reorder else None,
        )
        print(f"{report.summary()} ({time.time() - seed_started:.1f}s)")
        if report.ok:
            continue
        failures += 1
        for violation in (
            report.violations
            + report.reference.violations[:4]
            + report.parallel.violations[:4]
        ):
            print(f"    {violation}")
        out_dir = args.trace_dir or Path(".")
        out_dir.mkdir(parents=True, exist_ok=True)
        trace_path = out_dir / f"equivalence-seed{seed}.json"
        trace_path.write_text(json.dumps({
            "config": report.config.to_wire(),
            "ops": [op.to_wire() for op in report.ops],
            "faults": [action.to_wire() for action in report.fault_actions],
            "violations": [str(v) for v in report.violations],
            "serial_digest": report.reference.stats.get("state_digest"),
            "parallel_digest": report.parallel.stats.get("state_digest"),
            "parallel_executor": report.parallel.config.executor,
        }, indent=1))
        print(f"    trace: {trace_path}")
    elapsed = time.time() - started
    print(f"{args.seeds} seeds x2 runs, {failures} failing "
          f"equivalence ({elapsed:.1f}s total)")
    return 1 if failures else 0


def _check_gossip_equivalence(args) -> int:
    """Sweep seeds through the gossip-equivalence invariant.

    A failing seed dumps its (config, ops, faults) triple plus both
    digests and the violations as ``gossip-equivalence-seed{N}.json``
    for artifact upload; the trace replays with ``--replay`` under
    either dissemination mode.
    """
    every = args.anti_entropy_every if args.anti_entropy_every is not None else 4.0
    failures = 0
    started = time.time()
    for seed in range(args.seed_base, args.seed_base + args.seeds):
        seed_started = time.time()
        report = run_gossip_equivalence(
            seed, args.ops, workload=args.workload, anti_entropy_every=every,
        )
        print(f"{report.summary()} ({time.time() - seed_started:.1f}s)")
        if report.ok:
            continue
        failures += 1
        for violation in (
            report.violations
            + report.reference.violations[:4]
            + report.batched.violations[:4]
        ):
            print(f"    {violation}")
        out_dir = args.trace_dir or Path(".")
        out_dir.mkdir(parents=True, exist_ok=True)
        trace_path = out_dir / f"gossip-equivalence-seed{seed}.json"
        trace_path.write_text(json.dumps({
            "config": report.config.to_wire(),
            "ops": [op.to_wire() for op in report.ops],
            "faults": [action.to_wire() for action in report.fault_actions],
            "violations": [str(v) for v in report.violations],
            "reference_digest": report.reference.stats.get("state_digest"),
            "batched_digest": report.batched.stats.get("state_digest"),
            "anti_entropy_every": every,
        }, indent=1))
        print(f"    trace: {trace_path}")
    elapsed = time.time() - started
    print(f"{args.seeds} seeds x2 runs, {failures} failing "
          f"gossip-equivalence ({elapsed:.1f}s total)")
    return 1 if failures else 0


def _shrink_and_dump(config, ops, fault_actions, args) -> None:
    print(f"    shrinking seed {config.seed} "
          f"({len(ops)} ops, {len(fault_actions)} fault actions)...")
    result = shrink_failing_run(
        config, ops, fault_actions,
        weaken=args.weaken, max_executions=args.shrink_budget,
    )
    print(f"    minimized to {len(result.ops)} ops + "
          f"{len(result.fault_actions)} fault actions "
          f"in {result.executions} replays:")
    for op in result.ops:
        print(f"      op {op.index} @{op.at}: {op.kind} "
              f"{op.function}{op.args} via {op.endorsers}")
    for action in result.fault_actions:
        target = action.topic or f"{action.src}->{action.dst}"
        print(f"      fault @{action.at}: {action.kind} {target}")

    out_dir = args.trace_dir or Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / f"trace-seed{config.seed}.json"
    trace_path.write_text(json.dumps(result.to_trace(), indent=1))
    script_path = out_dir / f"repro-seed{config.seed}.py"
    script_path.write_text(render_repro_script(result, weaken=args.weaken))
    print(f"    trace: {trace_path}  repro script: {script_path}")


def _replay(
    path: Path,
    weaken: str | None,
    backend: str | None = None,
    executor: str | None = None,
) -> int:
    config, ops, fault_actions = load_trace(json.loads(path.read_text()))
    if backend is not None:
        config = dataclasses.replace(config, state_backend=backend)
    if executor is not None:
        config = dataclasses.replace(config, executor=executor)
    report = execute(config, ops, fault_actions, weaken=weaken)
    print(report.summary())
    for violation in report.violations:
        print(f"    {violation}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
