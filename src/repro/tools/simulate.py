"""Deterministic simulation sweep: ``python -m repro.tools.simulate``.

Runs ``--seeds`` randomized simulations of ``--ops`` operations each and
checks every global invariant at block boundaries and quiescence.  On a
failure the trace is greedily shrunk (ddmin) to a minimal still-failing
trace, written as a JSON trace plus a standalone repro script.

Examples::

    python -m repro.tools.simulate --seeds 25 --ops 500
    python -m repro.tools.simulate --seeds 5 --ops 100 \\
        --weaken skip-endorsement-policy --trace-dir /tmp/traces
    python -m repro.tools.simulate --replay /tmp/traces/trace-seed3.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

from repro.simulation.config import SimulationConfig
from repro.storage import BACKEND_KINDS
from repro.simulation.harness import WEAKENERS, execute, generate
from repro.simulation.shrink import (
    load_trace,
    render_repro_script,
    shrink_failing_run,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.simulate",
        description="randomized workload + fault simulation with invariant checks",
    )
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of seeds to sweep (default 10)")
    parser.add_argument("--ops", type=int, default=200,
                        help="operations per seed (default 200)")
    parser.add_argument("--seed-base", type=int, default=1,
                        help="first seed of the sweep (default 1)")
    parser.add_argument("--weaken", choices=sorted(WEAKENERS), default=None,
                        help="deliberately sabotage the system under test "
                             "(the invariants must then fail)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    parser.add_argument("--shrink-budget", type=int, default=120,
                        help="max replays the shrinker may spend per failure")
    parser.add_argument("--trace-dir", type=Path, default=None,
                        help="where to write failing traces/repro scripts "
                             "(default: current directory)")
    parser.add_argument("--replay", type=Path, default=None,
                        help="replay a saved JSON trace instead of sweeping")
    parser.add_argument("--backend", choices=list(BACKEND_KINDS), default=None,
                        help="peer-ledger storage engine (default: the "
                             "REPRO_STATE_BACKEND env var, else memory)")
    args = parser.parse_args(argv)

    if args.replay is not None:
        return _replay(args.replay, args.weaken, args.backend)

    failures = 0
    started = time.time()
    for seed in range(args.seed_base, args.seed_base + args.seeds):
        seed_started = time.time()
        config = SimulationConfig.generate(seed, args.ops)
        if args.backend is not None:
            config = dataclasses.replace(config, state_backend=args.backend)
        ops, fault_actions = generate(config)
        report = execute(config, ops, fault_actions, weaken=args.weaken)
        print(f"{report.summary()} ({time.time() - seed_started:.1f}s)")
        if report.ok:
            continue
        failures += 1
        for violation in report.violations[:8]:
            print(f"    {violation}")
        if len(report.violations) > 8:
            print(f"    ... and {len(report.violations) - 8} more")
        if not args.no_shrink:
            _shrink_and_dump(config, ops, fault_actions, args)

    elapsed = time.time() - started
    print(f"{args.seeds} seeds, {failures} failing ({elapsed:.1f}s total)")
    return 1 if failures else 0


def _shrink_and_dump(config, ops, fault_actions, args) -> None:
    print(f"    shrinking seed {config.seed} "
          f"({len(ops)} ops, {len(fault_actions)} fault actions)...")
    result = shrink_failing_run(
        config, ops, fault_actions,
        weaken=args.weaken, max_executions=args.shrink_budget,
    )
    print(f"    minimized to {len(result.ops)} ops + "
          f"{len(result.fault_actions)} fault actions "
          f"in {result.executions} replays:")
    for op in result.ops:
        print(f"      op {op.index} @{op.at}: {op.kind} "
              f"{op.function}{op.args} via {op.endorsers}")
    for action in result.fault_actions:
        target = action.topic or f"{action.src}->{action.dst}"
        print(f"      fault @{action.at}: {action.kind} {target}")

    out_dir = args.trace_dir or Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / f"trace-seed{config.seed}.json"
    trace_path.write_text(json.dumps(result.to_trace(), indent=1))
    script_path = out_dir / f"repro-seed{config.seed}.py"
    script_path.write_text(render_repro_script(result, weaken=args.weaken))
    print(f"    trace: {trace_path}  repro script: {script_path}")


def _replay(path: Path, weaken: str | None, backend: str | None = None) -> int:
    config, ops, fault_actions = load_trace(json.loads(path.read_text()))
    if backend is not None:
        config = dataclasses.replace(config, state_backend=backend)
    report = execute(config, ops, fault_actions, weaken=weaken)
    print(report.summary())
    for violation in report.violations:
        print(f"    {violation}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
