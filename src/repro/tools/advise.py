"""CLI: security advisory for the §V preset channels (or a custom one).

Usage::

    python -m repro.tools.advise [--preset {three,five}] [--defended]
"""

from __future__ import annotations

import argparse

from repro.core.defense.advisor import advise
from repro.core.defense.features import FrameworkFeatures
from repro.network.presets import five_org_network, three_org_network


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.advise",
        description="Audit a channel configuration against the paper's attack classes",
    )
    parser.add_argument("--preset", choices=("three", "five"), default="three")
    parser.add_argument(
        "--collection-policy", action="store_true",
        help="define the collection-level AND(org1, org2) policy",
    )
    parser.add_argument(
        "--defended", action="store_true", help="audit with all defense features enabled"
    )
    args = parser.parse_args(argv)

    features = FrameworkFeatures.defended() if args.defended else FrameworkFeatures.original()
    policy = "AND('Org1MSP.peer', 'Org2MSP.peer')" if args.collection_policy else None
    build = three_org_network if args.preset == "three" else five_org_network
    net = build(collection_policy=policy, features=features)
    report = advise(net.network.channel, features)
    print(report.render())
    return 0 if report.worst is None else 1


if __name__ == "__main__":
    raise SystemExit(main())
