"""Transaction proposals: what a client sends to endorsers.

A proposal names the channel, chaincode, function and arguments, and
carries the client's identity (Fig. 3, "transaction proposal").  Private
input intended for the chaincode travels in the ``transient`` map, which
is *never* included in the signed/hashed proposal bytes — exactly why
Fabric applications pass private values through it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from repro.common.hashing import sha256, sha256_hex
from repro.common.serialization import canonical_bytes, memo_epoch
from repro.identity.identity import Certificate

_NONCE_COUNTER = itertools.count(1)


def next_nonce() -> bytes:
    """A process-unique nonce; deterministic so runs are reproducible."""
    return f"nonce-{next(_NONCE_COUNTER)}".encode("ascii")


def reset_nonce_counter() -> None:
    """Restart nonce issuance from 1, as if in a fresh process.

    Reproducibility tests replay a whole scenario twice in one process
    and compare transaction ids; ids embed the nonce, so the counter must
    restart for the replays to be bit-identical.
    """
    global _NONCE_COUNTER
    _NONCE_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class Proposal:
    """A transaction proposal (execution-phase request)."""

    channel_id: str
    chaincode_id: str
    function: str
    args: tuple[str, ...]
    creator: Certificate
    nonce: bytes
    transient: Mapping[str, bytes] = field(default_factory=dict)

    @property
    def tx_id(self) -> str:
        """Fabric derives the tx id as ``hash(nonce || creator)``."""
        return sha256_hex(self.nonce + self.creator.body_bytes())

    def header_bytes(self) -> bytes:
        """The proposal content covered by hashes and signatures.

        The transient map is deliberately excluded: it must never leak
        into anything that reaches the ordering service.
        """
        # An N-endorser fan-out serializes the same frozen proposal once
        # per endorser; stash the canonical form on the instance (the same
        # memoization pattern as ``ProposalResponsePayload.bytes``) so the
        # 2nd..Nth dispatch reuses it.  The memo is stamped with the
        # serialization epoch so ``crypto.clear_caches`` invalidates it.
        cached = getattr(self, "_header_bytes", None)
        if cached is None or cached[0] != memo_epoch():
            value = canonical_bytes(
                {
                    "channel_id": self.channel_id,
                    "chaincode_id": self.chaincode_id,
                    "function": self.function,
                    "args": list(self.args),
                    "creator": self.creator.to_wire(),
                    "nonce": self.nonce,
                }
            )
            cached = (memo_epoch(), value)
            object.__setattr__(self, "_header_bytes", cached)
        return cached[1]

    def proposal_hash(self) -> bytes:
        cached = getattr(self, "_proposal_hash", None)
        if cached is None or cached[0] != memo_epoch():
            cached = (memo_epoch(), sha256(self.header_bytes()))
            object.__setattr__(self, "_proposal_hash", cached)
        return cached[1]

    def simulation_digest(self) -> bytes:
        """Digest of everything that determines the simulation *result*.

        Unlike :meth:`proposal_hash` this excludes the nonce (two proposals
        for the same invocation simulate identically) but includes the
        transient map (private chaincode input changes the outcome).  The
        peer-side endorsement cache keys read-only evaluates by
        ``(simulation digest, state height)``.
        """
        cached = getattr(self, "_sim_digest", None)
        if cached is None or cached[0] != memo_epoch():
            value = sha256(canonical_bytes(
                {
                    "channel_id": self.channel_id,
                    "chaincode_id": self.chaincode_id,
                    "function": self.function,
                    "args": list(self.args),
                    "creator": self.creator.to_wire(),
                    "transient": {k: self.transient[k] for k in sorted(self.transient)},
                }
            ))
            cached = (memo_epoch(), value)
            object.__setattr__(self, "_sim_digest", cached)
        return cached[1]


def new_proposal(
    channel_id: str,
    chaincode_id: str,
    function: str,
    args: tuple[str, ...] | list[str],
    creator: Certificate,
    transient: Mapping[str, bytes] | None = None,
) -> Proposal:
    """Build a proposal with a fresh nonce."""
    return Proposal(
        channel_id=channel_id,
        chaincode_id=chaincode_id,
        function=function,
        args=tuple(args),
        creator=creator,
        nonce=next_nonce(),
        transient=dict(transient or {}),
    )
