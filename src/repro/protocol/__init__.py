"""Wire messages of the execute-order-validate pipeline."""

from repro.protocol.proposal import Proposal, new_proposal, next_nonce
from repro.protocol.response import (
    STATUS_ERROR,
    STATUS_OK,
    ChaincodeResponse,
    Endorsement,
    ProposalResponse,
    ProposalResponsePayload,
)
from repro.protocol.transaction import TransactionEnvelope, ValidationCode

__all__ = [
    "Proposal",
    "new_proposal",
    "next_nonce",
    "STATUS_ERROR",
    "STATUS_OK",
    "ChaincodeResponse",
    "Endorsement",
    "ProposalResponse",
    "ProposalResponsePayload",
    "TransactionEnvelope",
    "ValidationCode",
]
