"""Assembled transactions and validation codes.

A :class:`TransactionEnvelope` is what the client submits to ordering: a
header identifying channel/chaincode/creator, the proposal-response
payload agreed on by the endorsers, the list of endorsements, and the
client's signature over all of it (Fig. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.serialization import canonical_bytes, memo_epoch
from repro.identity.identity import Certificate
from repro.protocol.response import Endorsement, ProposalResponsePayload


class ValidationCode(str, enum.Enum):
    """Per-transaction validity flags recorded in block metadata."""

    VALID = "VALID"
    ENDORSEMENT_POLICY_FAILURE = "ENDORSEMENT_POLICY_FAILURE"
    MVCC_READ_CONFLICT = "MVCC_READ_CONFLICT"
    PHANTOM_READ_CONFLICT = "PHANTOM_READ_CONFLICT"
    BAD_CREATOR_SIGNATURE = "BAD_CREATOR_SIGNATURE"
    BAD_RESPONSE_STATUS = "BAD_RESPONSE_STATUS"
    DUPLICATE_TXID = "DUPLICATE_TXID"
    INVALID_OTHER = "INVALID_OTHER"
    # Assigned by the conflict-aware ordering service (REPRO_REORDER=1),
    # never by a validating peer: the transaction was dropped before block
    # inclusion because its reads were provably stale, so this code never
    # appears in block metadata — only in client-facing submit results.
    ORDERER_EARLY_ABORT = "ORDERER_EARLY_ABORT"

    @property
    def is_valid(self) -> bool:
        return self is ValidationCode.VALID


@dataclass(frozen=True)
class TransactionEnvelope:
    """A signed, endorsed transaction ready for ordering."""

    tx_id: str
    channel_id: str
    chaincode_id: str
    creator: Certificate
    payload: ProposalResponsePayload
    endorsements: tuple[Endorsement, ...]
    signature: bytes
    # The chaincode input (Fig. 3 "transaction proposal"): committed with
    # the transaction, and therefore readable by every peer.  The
    # *transient* map is deliberately NOT part of an envelope.
    function: str = ""
    args: tuple[str, ...] = ()

    def signed_bytes(self) -> bytes:
        """The content covered by the creator's signature.

        Memoized on the (frozen) envelope: every peer re-serializes the
        same envelope to check the creator signature, so the canonical
        bytes are computed once per envelope per process.
        """
        cached = getattr(self, "_serialized", None)
        if cached is None or cached[0] != memo_epoch():
            value = canonical_bytes(
                {
                    "tx_id": self.tx_id,
                    "channel_id": self.channel_id,
                    "chaincode_id": self.chaincode_id,
                    "creator": self.creator.to_wire(),
                    "payload": self.payload.to_wire(),
                    "endorsements": [e.to_wire() for e in self.endorsements],
                    "function": self.function,
                    "args": list(self.args),
                }
            )
            cached = (memo_epoch(), value)
            object.__setattr__(self, "_serialized", cached)
        return cached[1]

    def to_wire(self) -> dict:
        return {
            "tx_id": self.tx_id,
            "channel_id": self.channel_id,
            "chaincode_id": self.chaincode_id,
            "creator": self.creator.to_wire(),
            "payload": self.payload.to_wire(),
            "endorsements": [e.to_wire() for e in self.endorsements],
            "signature": self.signature,
            "function": self.function,
            "args": list(self.args),
        }

    def verify_creator_signature(self) -> bool:
        return self.creator.public_key.verify(self.signed_bytes(), self.signature)

    def endorser_certificates(self) -> tuple[Certificate, ...]:
        return tuple(e.endorser for e in self.endorsements)
