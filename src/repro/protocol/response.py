"""Proposal responses and endorsements (Fig. 3, "proposal response").

The *proposal-response payload* is the unit endorsers sign and the unit
that ends up inside the committed transaction.  It contains:

* the hash of the proposal it answers,
* the read/write set (``results``) — hashed for private collections,
* the chaincode :class:`ChaincodeResponse` with its ``status``,
  ``message`` and ``payload`` fields.

Use Case 3 of the paper lives here: the ``payload`` field is plaintext
even for PDC transactions, so whatever a chaincode function returns is
recorded on-chain in the clear.  New Feature 2 changes *which* payload
variant gets signed and committed (the SHA-256 hash of the original),
while the client still receives the original out-of-band.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.common.hashing import sha256
from repro.common.serialization import canonical_bytes, memo_epoch
from repro.identity.identity import Certificate

if TYPE_CHECKING:  # pragma: no cover - break the ledger<->chaincode import cycle
    from repro.chaincode.rwset import TxReadWriteSet

STATUS_OK = 200
STATUS_ERROR = 500


@dataclass(frozen=True)
class ChaincodeResponse:
    """The ``(status, message, payload)`` triple returned by chaincode."""

    status: int = STATUS_OK
    message: str = ""
    payload: bytes = b""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_wire(self) -> dict:
        return {"status": self.status, "message": self.message, "payload": self.payload}

    def with_hashed_payload(self) -> "ChaincodeResponse":
        """The New Feature 2 variant: payload replaced by its SHA-256 hash."""
        return replace(self, payload=sha256(self.payload))


@dataclass(frozen=True)
class ChaincodeEvent:
    """A chaincode event: committed with the transaction, plaintext.

    Events are delivered to every subscribed application on every peer —
    one more channel (beyond the ``payload`` field of Use Case 3) through
    which sloppy chaincode can expose private data to non-members.
    """

    name: str
    payload: bytes = b""

    def to_wire(self) -> dict:
        return {"name": self.name, "payload": self.payload}

    def with_hashed_payload(self) -> "ChaincodeEvent":
        return ChaincodeEvent(name=self.name, payload=sha256(self.payload))


@dataclass(frozen=True)
class ProposalResponsePayload:
    """The signed content of an endorsement; stored verbatim in the tx."""

    proposal_hash: bytes
    results: "TxReadWriteSet"
    response: ChaincodeResponse
    event: Optional[ChaincodeEvent] = None

    def to_wire(self) -> dict:
        return {
            "proposal_hash": self.proposal_hash,
            "results": self.results.to_wire(),
            "response": self.response.to_wire(),
            "event": self.event.to_wire() if self.event else None,
        }

    def bytes(self) -> bytes:
        # Canonical serialization is the single hottest allocation of
        # block validation: every endorsement check of every peer hashes
        # these bytes.  The payload is deeply frozen, so the serialized
        # form is computed once and stashed on the instance — the 2nd..Nth
        # check (and the 2nd..Nth *peer*, which sees the same object in
        # this in-process simulator) reuses it.  Epoch-stamped so
        # ``crypto.clear_caches`` invalidates stashed instances too.
        cached = getattr(self, "_serialized", None)
        if cached is None or cached[0] != memo_epoch():
            cached = (memo_epoch(), canonical_bytes(self.to_wire()))
            object.__setattr__(self, "_serialized", cached)
        return cached[1]

    def with_hashed_payload(self) -> "ProposalResponsePayload":
        """New Feature 2, generalized: hash every plaintext channel —
        the response payload *and* the chaincode event payload."""
        hashed_event = self.event.with_hashed_payload() if self.event else None
        return replace(
            self, response=self.response.with_hashed_payload(), event=hashed_event
        )


@dataclass(frozen=True)
class Endorsement:
    """An endorser's certificate and its signature over the payload bytes."""

    endorser: Certificate
    signature: bytes

    def verify(self, payload_bytes: bytes) -> bool:
        return self.endorser.public_key.verify(payload_bytes, self.signature)

    def to_wire(self) -> dict:
        return {"endorser": self.endorser.to_wire(), "signature": self.signature}


@dataclass(frozen=True)
class ProposalResponse:
    """What an endorser returns to the client.

    ``payload`` is the signed variant that must go into the transaction;
    ``client_response`` is what the application reads.  In the original
    framework the two carry the same chaincode response; under New
    Feature 2 the signed variant has a hashed payload while
    ``client_response`` keeps the original plaintext (Fig. 4).
    """

    payload: ProposalResponsePayload
    endorsement: Endorsement
    client_response: ChaincodeResponse

    @property
    def ok(self) -> bool:
        return self.payload.response.ok

    def verify_endorsement(self) -> bool:
        return self.endorsement.verify(self.payload.bytes())
