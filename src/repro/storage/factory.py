"""Backend selection: explicit kind > ``REPRO_STATE_BACKEND`` > memory.

WAL backends opened without an explicit directory live under one
process-wide temp root removed at interpreter exit, so test suites and
simulations can churn through wal-backed networks without littering.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
from pathlib import Path
from typing import Optional

from repro.storage.backend import KVBackend, StorageError
from repro.storage.memory import MemoryBackend
from repro.storage.wal import WalBackend

ENV_VAR = "REPRO_STATE_BACKEND"
BACKEND_KINDS = ("memory", "wal")

_temp_root: Optional[Path] = None


def resolve_backend_kind(kind: Optional[str] = None) -> str:
    """Resolve a backend kind: argument, else env override, else memory."""
    resolved = kind or os.environ.get(ENV_VAR) or "memory"
    if resolved not in BACKEND_KINDS:
        raise StorageError(
            f"unknown state backend {resolved!r} (choose from {BACKEND_KINDS}; "
            f"check the {ENV_VAR} environment variable)"
        )
    return resolved


def storage_root() -> Path:
    """Process-wide scratch root for unnamed WAL backends."""
    global _temp_root
    if _temp_root is None:
        _temp_root = Path(tempfile.mkdtemp(prefix="repro-state-"))
        atexit.register(shutil.rmtree, _temp_root, True)
    return _temp_root


def open_backend(
    kind: Optional[str] = None,
    directory: Optional[str | Path] = None,
    name: Optional[str] = None,
) -> KVBackend:
    """Open a backend of ``kind`` (resolved via :func:`resolve_backend_kind`).

    For ``wal``, ``directory`` selects (or creates) the engine directory;
    ``name`` appends a subdirectory (one ledger per peer under a shared
    network directory).  Without a directory a fresh scratch directory is
    allocated under :func:`storage_root`.
    """
    resolved = resolve_backend_kind(kind)
    if resolved == "memory":
        return MemoryBackend()
    if directory is None:
        directory = Path(tempfile.mkdtemp(prefix=f"{name or 'ledger'}-", dir=storage_root()))
    else:
        directory = Path(directory)
        if name:
            directory = directory / name
    return WalBackend(directory)
