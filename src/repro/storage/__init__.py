"""Pluggable storage engines for the ledger layer.

See :mod:`repro.storage.backend` for the interface contract,
:mod:`repro.storage.memory` and :mod:`repro.storage.wal` for the two
engines, and :mod:`repro.storage.factory` for selection
(``REPRO_STATE_BACKEND=memory|wal``).
"""

from repro.storage.backend import (
    MISSING,
    SEP,
    KVBackend,
    SortedTables,
    StorageError,
    WriteBatch,
    compose_key,
    prefix_bounds,
    read_through,
    split_key,
    write_op,
)
from repro.storage.factory import (
    BACKEND_KINDS,
    ENV_VAR,
    open_backend,
    resolve_backend_kind,
)
from repro.storage.memory import MemoryBackend
from repro.storage.wal import WalBackend

__all__ = [
    "KVBackend",
    "MemoryBackend",
    "WalBackend",
    "WriteBatch",
    "SortedTables",
    "StorageError",
    "SEP",
    "MISSING",
    "compose_key",
    "split_key",
    "prefix_bounds",
    "read_through",
    "write_op",
    "open_backend",
    "resolve_backend_kind",
    "BACKEND_KINDS",
    "ENV_VAR",
]
