"""Codecs between ledger store entries and backend byte values.

The backends store opaque ``bytes``; these helpers own the framing.
Versioned entries use a fixed 16-byte header (two little-endian u64s for
``(block_num, tx_num)``) followed by the raw value — decoding is a slice,
not a parse.  Structured records (blocks, transient rwsets, metadata
maps) go through stdlib ``pickle``; the bytes are peer-local (never
signed, never compared across peers), so canonical encoding is not
required — only exact round-tripping, which the durability invariant
checks byte-for-byte.

The WAL's on-disk framing, by contrast, must never execute code while
decoding — a corrupt or adversarial snapshot file fed to ``pickle.loads``
is an arbitrary-code-execution primitive.  ``pack_ops``/``unpack_ops``
and ``pack_tables``/``unpack_tables`` are pure ``struct`` codecs for the
two WAL payload shapes (a batch's op list and a compacted table
snapshot).  Both start with a magic prefix whose first byte (``0x01``)
can never open a protocol-2+ pickle stream (those start with ``0x80``),
so readers can distinguish the formats for one-release read
compatibility.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, Iterable, Optional

from repro.ledger.version import Version

_VERSION = struct.Struct("<QQ")
_PAIR = struct.Struct("<QQ")
_U32 = struct.Struct("<I")

#: Byte length of a packed ``(u64, u64)`` pair.
U64_PAIR_SIZE = _PAIR.size

#: Magic prefixes for the deterministic framings.  First byte 0x01 is
#: not a valid start of any pickle protocol >= 2 stream (0x80).
OPS_MAGIC = b"\x01ROP1"
TABLES_MAGIC = b"\x01RTB1"
BYTES_MAP_MAGIC = b"\x01RMM1"
PRIVATE_WRITES_MAGIC = b"\x01RPW1"

#: First byte of every pickle protocol >= 2 stream (the PROTO opcode) —
#: how legacy pickle WAL payloads are recognized during the one-release
#: read-compat window.
PICKLE_MARKER = b"\x80"


class CodecError(ValueError):
    """A byte payload does not decode under the expected framing."""


def pack_versioned(value: bytes, version: Version) -> bytes:
    return _VERSION.pack(version.block_num, version.tx_num) + value


def unpack_versioned(raw: bytes) -> tuple[bytes, Version]:
    block_num, tx_num = _VERSION.unpack_from(raw)
    return raw[_VERSION.size :], Version(block_num, tx_num)


def unpack_version(raw: bytes) -> Version:
    block_num, tx_num = _VERSION.unpack_from(raw)
    return Version(block_num, tx_num)


def pack_u64_pair(first: int, second: int) -> bytes:
    return _PAIR.pack(first, second)


def unpack_u64_pair(raw: bytes) -> tuple[int, int]:
    return _PAIR.unpack(raw)


def pack_obj(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_obj(raw: bytes) -> Any:
    return pickle.loads(raw)


# -- deterministic framings ---------------------------------------------------
def pack_str(out: list, text: str) -> None:
    """Append a length-prefixed UTF-8 string to an output chunk list."""
    encoded = text.encode("utf-8")
    out.append(_U32.pack(len(encoded)))
    out.append(encoded)


_pack_str = pack_str


class Reader:
    """Bounds-checked cursor over a byte payload."""

    def __init__(self, raw: bytes, offset: int = 0) -> None:
        self._raw = raw
        self._offset = offset

    def take(self, count: int) -> bytes:
        end = self._offset + count
        if end > len(self._raw):
            raise CodecError(
                f"payload truncated: need {count} bytes at {self._offset}, "
                f"have {len(self._raw) - self._offset}"
            )
        chunk = self._raw[self._offset : end]
        self._offset = end
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(_U32.size))[0]

    def string(self) -> str:
        return self.take(self.u32()).decode("utf-8")

    def done(self) -> bool:
        return self._offset == len(self._raw)


_Reader = Reader


def pack_bytes_map(data: dict[str, bytes]) -> bytes:
    """Frame a ``{name: bytes}`` map deterministically (sorted names).

    The framing behind world-state key metadata: the rows travel inside
    snapshot packages and are digested on the receiving peer, so they
    must decode without ever reaching ``pickle``.
    """
    out = [BYTES_MAP_MAGIC, _U32.pack(len(data))]
    for name in sorted(data):
        pack_str(out, name)
        value = data[name]
        out.append(_U32.pack(len(value)))
        out.append(value)
    return b"".join(out)


def unpack_bytes_map(raw: bytes) -> dict[str, bytes]:
    if not raw.startswith(BYTES_MAP_MAGIC):
        raise CodecError("bytes map lacks the deterministic-framing magic")
    reader = Reader(raw, len(BYTES_MAP_MAGIC))
    data: dict[str, bytes] = {}
    for _ in range(reader.u32()):
        name = reader.string()
        data[name] = reader.take(reader.u32())
    if not reader.done():
        raise CodecError("trailing bytes after the framed bytes map")
    return data


def pack_private_writes(
    namespace: str,
    collection: str,
    writes: Iterable[tuple[str, Optional[bytes], bool]],
) -> bytes:
    """Frame one collection's plaintext writes ``[(key, value|None, is_delete)]``.

    The value framing of the committed private-rwset archive.  Archive
    rows ride snapshot packages between peers (they are what
    reconciliation serves), so the framing is a pure struct codec — a
    corrupt or adversarial row raises :class:`CodecError` instead of
    reaching a deserializer that can execute code.
    """
    items = list(writes)
    out = [PRIVATE_WRITES_MAGIC]
    pack_str(out, namespace)
    pack_str(out, collection)
    out.append(_U32.pack(len(items)))
    for key, value, is_delete in items:
        pack_str(out, key)
        if is_delete:
            out.append(b"\x00")
        else:
            if value is None:
                raise CodecError(f"non-delete private write {key!r} has no value")
            out.append(b"\x01")
            out.append(_U32.pack(len(value)))
            out.append(value)
    return b"".join(out)


def unpack_private_writes(
    raw: bytes,
) -> tuple[str, str, list[tuple[str, Optional[bytes], bool]]]:
    if not raw.startswith(PRIVATE_WRITES_MAGIC):
        raise CodecError("private writes lack the deterministic-framing magic")
    reader = Reader(raw, len(PRIVATE_WRITES_MAGIC))
    namespace = reader.string()
    collection = reader.string()
    writes: list[tuple[str, Optional[bytes], bool]] = []
    for _ in range(reader.u32()):
        key = reader.string()
        tag = reader.take(1)
        if tag == b"\x00":
            writes.append((key, None, True))
        elif tag == b"\x01":
            writes.append((key, reader.take(reader.u32()), False))
        else:
            raise CodecError(f"unknown private-write tag {tag!r}")
    if not reader.done():
        raise CodecError("trailing bytes after the framed private writes")
    return namespace, collection, writes


def pack_ops(ops: Iterable[tuple[str, str, Optional[bytes]]]) -> bytes:
    """Frame one batch's op list ``[(namespace, key, value|None)]``."""
    items = list(ops)
    out = [OPS_MAGIC, _U32.pack(len(items))]
    for namespace, key, value in items:
        _pack_str(out, namespace)
        _pack_str(out, key)
        if value is None:  # a delete
            out.append(b"\x00")
        else:
            out.append(b"\x01")
            out.append(_U32.pack(len(value)))
            out.append(value)
    return b"".join(out)


def unpack_ops(raw: bytes) -> list[tuple[str, str, Optional[bytes]]]:
    if not raw.startswith(OPS_MAGIC):
        raise CodecError("op payload lacks the deterministic-framing magic")
    reader = _Reader(raw, len(OPS_MAGIC))
    ops: list[tuple[str, str, Optional[bytes]]] = []
    for _ in range(reader.u32()):
        namespace = reader.string()
        key = reader.string()
        tag = reader.take(1)
        if tag == b"\x00":
            ops.append((namespace, key, None))
        elif tag == b"\x01":
            ops.append((namespace, key, reader.take(reader.u32())))
        else:
            raise CodecError(f"unknown op tag {tag!r}")
    if not reader.done():
        raise CodecError("trailing bytes after the framed op list")
    return ops


def pack_tables(data: dict[str, dict[str, bytes]]) -> bytes:
    """Frame a compacted table snapshot ``{namespace: {key: value}}``.

    Namespaces and keys are emitted sorted, and the body carries its own
    trailing crc32, so the same tables always produce the same bytes and
    a bit flip is detected without ever reaching a deserializer.
    """
    out = [TABLES_MAGIC, _U32.pack(len(data))]
    for namespace in sorted(data):
        rows = data[namespace]
        _pack_str(out, namespace)
        out.append(_U32.pack(len(rows)))
        for key in sorted(rows):
            _pack_str(out, key)
            value = rows[key]
            out.append(_U32.pack(len(value)))
            out.append(value)
    body = b"".join(out)
    return body + _U32.pack(zlib.crc32(body))


def unpack_tables(raw: bytes) -> dict[str, dict[str, bytes]]:
    if not raw.startswith(TABLES_MAGIC):
        raise CodecError("table snapshot lacks the deterministic-framing magic")
    if len(raw) < len(TABLES_MAGIC) + _U32.size:
        raise CodecError("table snapshot truncated before its checksum")
    body, checksum = raw[: -_U32.size], _U32.unpack(raw[-_U32.size :])[0]
    if zlib.crc32(body) != checksum:
        raise CodecError("table snapshot failed its crc32 check")
    reader = _Reader(body, len(TABLES_MAGIC))
    data: dict[str, dict[str, bytes]] = {}
    for _ in range(reader.u32()):
        namespace = reader.string()
        rows: dict[str, bytes] = {}
        for _ in range(reader.u32()):
            key = reader.string()
            rows[key] = reader.take(reader.u32())
        data[namespace] = rows
    if not reader.done():
        raise CodecError("trailing bytes after the framed tables")
    return data
