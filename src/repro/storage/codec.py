"""Codecs between ledger store entries and backend byte values.

The backends store opaque ``bytes``; these helpers own the framing.
Versioned entries use a fixed 16-byte header (two little-endian u64s for
``(block_num, tx_num)``) followed by the raw value — decoding is a slice,
not a parse.  Structured records (blocks, transient rwsets, metadata
maps) go through stdlib ``pickle``; the bytes are peer-local (never
signed, never compared across peers), so canonical encoding is not
required — only exact round-tripping, which the durability invariant
checks byte-for-byte.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

from repro.ledger.version import Version

_VERSION = struct.Struct("<QQ")
_PAIR = struct.Struct("<QQ")


def pack_versioned(value: bytes, version: Version) -> bytes:
    return _VERSION.pack(version.block_num, version.tx_num) + value


def unpack_versioned(raw: bytes) -> tuple[bytes, Version]:
    block_num, tx_num = _VERSION.unpack_from(raw)
    return raw[_VERSION.size :], Version(block_num, tx_num)


def unpack_version(raw: bytes) -> Version:
    block_num, tx_num = _VERSION.unpack_from(raw)
    return Version(block_num, tx_num)


def pack_u64_pair(first: int, second: int) -> bytes:
    return _PAIR.pack(first, second)


def unpack_u64_pair(raw: bytes) -> tuple[int, int]:
    return _PAIR.unpack(raw)


def pack_obj(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_obj(raw: bytes) -> Any:
    return pickle.loads(raw)
