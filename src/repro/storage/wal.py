"""The persistent storage engine: write-ahead log + compacted snapshots.

Layout of a backend directory::

    snapshot.bin   framed {namespace: {key: value}} — the compacted base
    wal.log        append-only records, one per committed batch

Each WAL record frames one atomic batch::

    [4-byte little-endian payload length][4-byte crc32][payload]

where the payload is the deterministically framed op list
``[(namespace, key, value|None)]`` (``codec.pack_ops``).  Commit = append
record, flush, apply to the in-memory tables.  Recovery = load the
snapshot, then replay records until the log ends *or* a record is torn
(truncated mid-write) or fails its checksum — the file is then truncated
back to the last complete record, so a crash mid-batch can never surface
half a block.  Every ``compact_every`` commits the tables are rewritten
as a fresh snapshot (tmp file + atomic rename) and the log is reset;
replaying a log that predates the rename is idempotent because ops are
absolute puts/deletes.

Snapshot and record payloads used to be pickled; decoding them is kept
for one release as a read-compat fallback (old payloads are recognized
by pickle's 0x80 protocol marker, which no framed payload starts with).
Everything newly written uses the ``codec`` struct framing, so a corrupt
or hostile snapshot file can fail a checksum but never execute code.

Stdlib only: ``struct`` + ``zlib.crc32``.  By default commits
``flush()`` to the OS (surviving simulated *process* crashes); set
``sync="fsync"`` to also survive machine crashes at real-fsync cost.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Iterator, Optional

from repro.storage.backend import KVBackend, SortedTables, StorageError, WriteBatch
from repro.storage.codec import (
    PICKLE_MARKER,
    TABLES_MAGIC,
    pack_ops,
    pack_tables,
    unpack_ops,
    unpack_tables,
)

SNAPSHOT_FILE = "snapshot.bin"
SNAPSHOT_TMP = "snapshot.tmp"
WAL_FILE = "wal.log"

_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

DEFAULT_COMPACT_EVERY = 512


class WalBackend(KVBackend):
    """Append-only WAL engine with snapshot compaction and replay-on-open."""

    kind = "wal"

    def __init__(
        self,
        directory: str | Path,
        compact_every: int = DEFAULT_COMPACT_EVERY,
        sync: str = "flush",
    ) -> None:
        if sync not in ("flush", "fsync"):
            raise StorageError(f"unknown sync mode {sync!r} (flush|fsync)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._compact_every = compact_every
        self._sync_mode = sync
        self._tables = SortedTables()
        self._closed = False
        #: Bytes of torn/corrupt log tail discarded during recovery (0 on a
        #: clean open) — exposed so callers can report detected truncation.
        self.recovered_torn_bytes = 0
        #: WAL records replayed during recovery (before this session's own).
        self.replayed_records = 0
        self._load_snapshot()
        self._replay_wal()
        self._wal = open(self._wal_path, "ab")
        self._commits_since_compaction = self.replayed_records

    # -- paths ---------------------------------------------------------------
    @property
    def _wal_path(self) -> Path:
        return self.directory / WAL_FILE

    @property
    def _snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_FILE

    # -- recovery ------------------------------------------------------------
    def _load_snapshot(self) -> None:
        tmp = self.directory / SNAPSHOT_TMP
        if tmp.exists():  # a compaction died before its atomic rename
            tmp.unlink()
        if not self._snapshot_path.exists():
            return
        raw = self._snapshot_path.read_bytes()
        try:
            if raw.startswith(TABLES_MAGIC):
                self._tables.load(unpack_tables(raw))
            elif raw.startswith(PICKLE_MARKER):
                # One-release read compat: snapshots written before the
                # deterministic framing were pickled.
                self._tables.load(pickle.loads(raw))
            else:
                raise StorageError("unrecognized snapshot framing")
        except Exception as exc:
            raise StorageError(
                f"corrupt snapshot {self._snapshot_path}: {exc}"
            ) from exc

    def _replay_wal(self) -> None:
        if not self._wal_path.exists():
            return
        data = self._wal_path.read_bytes()
        offset = 0
        valid_end = 0
        while True:
            header = data[offset : offset + _HEADER.size]
            if len(header) < _HEADER.size:
                break  # end of log, or a torn header
            length, checksum = _HEADER.unpack(header)
            payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
            if len(payload) < length:
                break  # torn record: the batch never finished writing
            if zlib.crc32(payload) != checksum:
                break  # corrupt tail
            try:
                if payload.startswith(PICKLE_MARKER):
                    # One-release read compat for pre-framing records.
                    ops = pickle.loads(payload)
                else:
                    ops = unpack_ops(payload)
            except Exception:
                break
            self._tables.apply(ops)
            self.replayed_records += 1
            offset += _HEADER.size + length
            valid_end = offset
        if valid_end < len(data):
            # Recover to the last complete record, never silently misread.
            self.recovered_torn_bytes = len(data) - valid_end
            with open(self._wal_path, "r+b") as fh:
                fh.truncate(valid_end)

    # -- reads ---------------------------------------------------------------
    def get(self, namespace: str, key: str) -> Optional[bytes]:
        return self._tables.get(namespace, key)

    def range(
        self, namespace: str, start: str = "", end: Optional[str] = None
    ) -> Iterator[tuple[str, bytes]]:
        return self._tables.scan(namespace, start, end)

    def count(self, namespace: str) -> int:
        return self._tables.count(namespace)

    def namespaces(self) -> list[str]:
        return self._tables.namespaces()

    # -- writes --------------------------------------------------------------
    def commit(self, batch: WriteBatch) -> None:
        if self._closed:
            raise StorageError(f"backend at {self.directory} is closed")
        if not batch.ops:
            batch.run_callbacks()
            return
        payload = pack_ops(batch.ops)
        self._wal.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._wal.write(payload)
        self._wal.flush()
        if self._sync_mode == "fsync":
            os.fsync(self._wal.fileno())
        # The record is durable: apply, notify, maybe compact.
        self._tables.apply(batch.ops)
        batch.run_callbacks()
        self._commits_since_compaction += 1
        if self._commits_since_compaction >= self._compact_every:
            self.compact()

    def compact(self) -> None:
        """Fold the log into a fresh snapshot and reset the WAL."""
        tmp = self.directory / SNAPSHOT_TMP
        with open(tmp, "wb") as fh:
            fh.write(pack_tables(self._tables.snapshot()))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._snapshot_path)  # atomic: old or new, never half
        # Only after the snapshot is durable may the log be reset; a crash
        # in between replays ops the snapshot already holds — idempotent.
        self._wal.close()
        self._wal = open(self._wal_path, "wb")
        self._commits_since_compaction = 0

    def sync(self) -> None:
        if not self._closed:
            self._wal.flush()
            os.fsync(self._wal.fileno())

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._wal.flush()
            self._wal.close()
            self._closed = True

    def crash(self) -> None:
        """Process death: drop the handle; only flushed records survive."""
        if not self._closed:
            self._wal.close()
            self._closed = True

    def reopen(self) -> "WalBackend":
        self.crash()
        return WalBackend(
            self.directory, compact_every=self._compact_every, sync=self._sync_mode
        )
