"""The pluggable storage engine interface: namespaced KV with atomic batches.

Every ledger store (world state, private data, private hashes, transient
store, block store) sits on one :class:`KVBackend` per peer.  The backend
speaks only ``(namespace, key) -> bytes``; the stores own their codecs.
Two engines implement the interface:

* :class:`repro.storage.memory.MemoryBackend` — in-process tables with a
  lazily maintained sorted index per namespace (no full-store scans);
* :class:`repro.storage.wal.WalBackend` — a persistent engine with an
  append-only write-ahead log, periodic compacted snapshots and
  replay-on-open recovery.

The unit of durability is the :class:`WriteBatch`: the committer stages a
whole block's worth of writes (public + hashed + plaintext + bookkeeping
+ the block itself) into one batch and commits it atomically — a failure
mid-block leaves the backend exactly as it was before the block.
"""

from __future__ import annotations

import abc
import bisect
from typing import Callable, Iterator, Optional

from repro.common.errors import ReproError

#: Separator for composite keys.  ``\x00`` sorts before every printable
#: character, so ``prefix + SEP`` bounds cover exactly one composite level.
SEP = "\x00"

#: Sentinel distinguishing "not staged in this batch" from "staged delete".
MISSING = object()


class StorageError(ReproError):
    """A storage engine failed (corrupt file, closed backend, bad batch)."""


def compose_key(*parts: str) -> str:
    """Join composite key parts; parts must not contain :data:`SEP`."""
    return SEP.join(parts)


def split_key(key: str) -> list[str]:
    return key.split(SEP)


def prefix_bounds(*parts: str) -> tuple[str, str]:
    """``(start, end)`` range covering every key under the composite prefix."""
    prefix = SEP.join(parts) + SEP
    return prefix, prefix + "\xff"


class WriteBatch:
    """An ordered set of puts/deletes applied atomically by ``commit``.

    Staged writes are readable back through :meth:`staged` so multi-step
    commit logic (e.g. metadata read-modify-write within one block) sees
    its own pending effects.  ``on_commit`` callbacks run only after the
    backend has durably applied the batch — stores use them to update
    their in-memory indexes without risking divergence on failure.
    """

    __slots__ = ("_ops", "_staged", "_callbacks")

    def __init__(self) -> None:
        self._ops: list[tuple[str, str, Optional[bytes]]] = []
        self._staged: dict[tuple[str, str], Optional[bytes]] = {}
        self._callbacks: list[Callable[[], None]] = []

    def put(self, namespace: str, key: str, value: bytes) -> None:
        self._ops.append((namespace, key, value))
        self._staged[(namespace, key)] = value

    def delete(self, namespace: str, key: str) -> None:
        self._ops.append((namespace, key, None))
        self._staged[(namespace, key)] = None

    def staged(self, namespace: str, key: str):
        """The staged value (``None`` = staged delete), or :data:`MISSING`."""
        return self._staged.get((namespace, key), MISSING)

    def on_commit(self, callback: Callable[[], None]) -> None:
        self._callbacks.append(callback)

    @property
    def ops(self) -> list[tuple[str, str, Optional[bytes]]]:
        return self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()


class KVBackend(abc.ABC):
    """Namespaced key/value storage with sorted range scans and batches."""

    kind: str = "abstract"

    # -- point operations ---------------------------------------------------
    @abc.abstractmethod
    def get(self, namespace: str, key: str) -> Optional[bytes]: ...

    def put(self, namespace: str, key: str, value: bytes) -> None:
        batch = WriteBatch()
        batch.put(namespace, key, value)
        self.commit(batch)

    def delete(self, namespace: str, key: str) -> None:
        batch = WriteBatch()
        batch.delete(namespace, key)
        self.commit(batch)

    # -- scans --------------------------------------------------------------
    @abc.abstractmethod
    def range(
        self, namespace: str, start: str = "", end: Optional[str] = None
    ) -> Iterator[tuple[str, bytes]]:
        """Key-sorted ``(key, value)`` pairs with ``start <= key < end``."""

    def prefix(self, namespace: str, *parts: str) -> Iterator[tuple[str, bytes]]:
        """Range scan over one composite-key prefix level."""
        start, end = prefix_bounds(*parts)
        return self.range(namespace, start, end)

    @abc.abstractmethod
    def count(self, namespace: str) -> int:
        """Number of keys in ``namespace`` (O(1) on both engines)."""

    @abc.abstractmethod
    def namespaces(self) -> list[str]:
        """Every non-empty namespace (for audits and bootstrap resets)."""

    # -- atomic batches ------------------------------------------------------
    @abc.abstractmethod
    def commit(self, batch: WriteBatch) -> None:
        """Apply every op in ``batch`` atomically, then run its callbacks."""

    # -- lifecycle -----------------------------------------------------------
    def sync(self) -> None:
        """Force buffered writes down to the durable medium (no-op default)."""

    def close(self) -> None:
        """Cleanly release resources."""

    def crash(self) -> None:
        """Simulate process death: drop handles without a clean close."""

    @abc.abstractmethod
    def reopen(self) -> "KVBackend":
        """Recover a backend over the same durable medium after a crash."""


class SortedTables:
    """Per-namespace hash tables plus a lazily rebuilt sorted key index.

    Point ops are O(1); a range scan pays one ``sorted()`` only when keys
    were added or removed since the last scan — replacing the seed stores'
    full-store scan+sort on every iteration.
    """

    __slots__ = ("_tables", "_sorted")

    def __init__(self) -> None:
        self._tables: dict[str, dict[str, bytes]] = {}
        self._sorted: dict[str, Optional[list[str]]] = {}

    def get(self, namespace: str, key: str) -> Optional[bytes]:
        table = self._tables.get(namespace)
        return table.get(key) if table else None

    def set(self, namespace: str, key: str, value: bytes) -> None:
        table = self._tables.setdefault(namespace, {})
        if key not in table:
            self._sorted[namespace] = None  # new key invalidates the index
        table[key] = value

    def remove(self, namespace: str, key: str) -> None:
        table = self._tables.get(namespace)
        if table is not None and table.pop(key, None) is not None:
            self._sorted[namespace] = None

    def count(self, namespace: str) -> int:
        table = self._tables.get(namespace)
        return len(table) if table else 0

    def namespaces(self) -> list[str]:
        return sorted(ns for ns, table in self._tables.items() if table)

    def sorted_keys(self, namespace: str) -> list[str]:
        keys = self._sorted.get(namespace)
        if keys is None:
            keys = sorted(self._tables.get(namespace, ()))
            self._sorted[namespace] = keys
        return keys

    def scan(
        self, namespace: str, start: str = "", end: Optional[str] = None
    ) -> Iterator[tuple[str, bytes]]:
        keys = self.sorted_keys(namespace)
        table = self._tables.get(namespace, {})
        lo = bisect.bisect_left(keys, start) if start else 0
        hi = bisect.bisect_left(keys, end) if end is not None else len(keys)
        for key in keys[lo:hi]:
            yield key, table[key]

    def apply(self, ops: list[tuple[str, str, Optional[bytes]]]) -> None:
        for namespace, key, value in ops:
            if value is None:
                self.remove(namespace, key)
            else:
                self.set(namespace, key, value)

    def snapshot(self) -> dict[str, dict[str, bytes]]:
        return {ns: dict(table) for ns, table in self._tables.items() if table}

    def load(self, data: dict[str, dict[str, bytes]]) -> None:
        self._tables = {ns: dict(table) for ns, table in data.items()}
        self._sorted = {}


def read_through(
    backend: KVBackend, batch: Optional[WriteBatch], namespace: str, key: str
) -> Optional[bytes]:
    """Read ``key`` seeing any write staged in ``batch`` first."""
    if batch is not None:
        staged = batch.staged(namespace, key)
        if staged is not MISSING:
            return staged
    return backend.get(namespace, key)


def write_op(
    backend: KVBackend,
    batch: Optional[WriteBatch],
    namespace: str,
    key: str,
    value: Optional[bytes],
    on_commit: Optional[Callable[[], None]] = None,
) -> None:
    """Stage one op into ``batch``, or apply it immediately when batchless."""
    if batch is None:
        batch = WriteBatch()
        if value is None:
            batch.delete(namespace, key)
        else:
            batch.put(namespace, key, value)
        if on_commit is not None:
            batch.on_commit(on_commit)
        backend.commit(batch)
        return
    if value is None:
        batch.delete(namespace, key)
    else:
        batch.put(namespace, key, value)
    if on_commit is not None:
        batch.on_commit(on_commit)
