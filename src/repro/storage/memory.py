"""The in-process storage engine (the seed's behaviour, now indexed)."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.storage.backend import KVBackend, SortedTables, WriteBatch


class MemoryBackend(KVBackend):
    """Per-namespace hash tables with sorted-key indexes.

    Batches are trivially atomic: ops are plain dict mutations that cannot
    fail midway (all validation happens in the stores before staging).
    ``reopen`` returns the same instance — the tables *are* the durable
    medium, so a simulated peer restart recovers everything that was
    committed; what a crash loses is the in-flight work that never reached
    a committed batch, plus every store's derived in-memory index (rebuilt
    from the tables on reopen).
    """

    kind = "memory"

    def __init__(self) -> None:
        self._tables = SortedTables()

    def get(self, namespace: str, key: str) -> Optional[bytes]:
        return self._tables.get(namespace, key)

    def range(
        self, namespace: str, start: str = "", end: Optional[str] = None
    ) -> Iterator[tuple[str, bytes]]:
        return self._tables.scan(namespace, start, end)

    def count(self, namespace: str) -> int:
        return self._tables.count(namespace)

    def namespaces(self) -> list[str]:
        return self._tables.namespaces()

    def commit(self, batch: WriteBatch) -> None:
        self._tables.apply(batch.ops)
        batch.run_callbacks()

    def reopen(self) -> "MemoryBackend":
        return self
