"""repro — reproduction of "On Private Data Collection of Hyperledger Fabric".

A from-scratch, in-process Hyperledger Fabric simulator (identities,
policies, ledger, chaincode, gossip, peers, Raft ordering, client SDK),
the paper's fake-PDC-results-injection and PDC-leakage attacks, the two
defense features, and the GitHub static-analysis study with a calibrated
synthetic corpus.

Quickstart::

    from repro.network import three_org_network
    from repro.chaincode.contracts import PrivateAssetContract

    net = three_org_network()
    net.network.install_chaincode("pdccc", PrivateAssetContract())
    client = net.client_of(1)
    client.submit_transaction(
        "pdccc", "set_private", ["PDC1", "k1"],
        transient={"value": b"12"},
        endorsing_peers=[net.peer_of(1), net.peer_of(2)],
    ).raise_for_status()
"""

from repro.core.defense.features import FrameworkFeatures
from repro.network.network import FabricNetwork
from repro.network.presets import TestNetwork, five_org_network, three_org_network

__version__ = "1.0.0"

__all__ = [
    "FrameworkFeatures",
    "FabricNetwork",
    "TestNetwork",
    "five_org_network",
    "three_org_network",
    "__version__",
]
