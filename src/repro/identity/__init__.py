"""Identities, CAs, organizations and MSP validation."""

from repro.identity.ca import CertificateAuthority
from repro.identity.identity import Certificate, SigningIdentity
from repro.identity.msp import MSPRegistry
from repro.identity.organization import Organization
from repro.identity.roles import Role

__all__ = [
    "CertificateAuthority",
    "Certificate",
    "SigningIdentity",
    "MSPRegistry",
    "Organization",
    "Role",
]
