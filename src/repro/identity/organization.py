"""Organizations: a CA plus the identities it has enrolled.

An :class:`Organization` is the unit of membership in Fabric — channels,
endorsement policies and private data collections are all expressed in
terms of organizations.
"""

from __future__ import annotations

from repro.identity.ca import CertificateAuthority
from repro.identity.identity import SigningIdentity
from repro.identity.roles import Role


class Organization:
    """One consortium member: its MSP id, CA, and enrolled node identities."""

    def __init__(self, msp_id: str, name: str = "") -> None:
        self.msp_id = msp_id
        self.name = name or msp_id
        self.ca = CertificateAuthority(msp_id)
        self._identities: dict[str, SigningIdentity] = {}

    def enroll(self, enrollment_id: str, role: Role) -> SigningIdentity:
        """Enroll (or look up) a node identity under this organization."""
        qualified = f"{enrollment_id}.{self.msp_id}"
        if qualified not in self._identities:
            self._identities[qualified] = self.ca.enroll(qualified, role)
        return self._identities[qualified]

    def enroll_peer(self, name: str = "peer0") -> SigningIdentity:
        return self.enroll(name, Role.PEER)

    def enroll_client(self, name: str = "client0") -> SigningIdentity:
        return self.enroll(name, Role.CLIENT)

    def enroll_orderer(self, name: str = "orderer0") -> SigningIdentity:
        return self.enroll(name, Role.ORDERER)

    def enroll_admin(self, name: str = "admin") -> SigningIdentity:
        return self.enroll(name, Role.ADMIN)

    def identities(self) -> list[SigningIdentity]:
        return list(self._identities.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Organization({self.msp_id!r})"
