"""Identities: certificates and signing identities.

Every participant in a Fabric network holds a certificate issued by its
organization's CA.  A :class:`Certificate` is the public half (presented
inside endorsements); a :class:`SigningIdentity` couples it with the
private key held by the node itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.crypto import PrivateKey, PublicKey
from repro.common.serialization import canonical_bytes
from repro.identity.roles import Role


@dataclass(frozen=True)
class Certificate:
    """The public identity of a node: who it is and who vouches for it.

    ``issuer_signature`` is the CA's signature over the certificate body,
    which MSP validation checks before trusting the embedded public key.
    """

    enrollment_id: str
    msp_id: str
    role: Role
    public_key: PublicKey
    issuer_signature: bytes

    def body_bytes(self) -> bytes:
        """The portion of the certificate covered by the CA signature."""
        return canonical_bytes(
            {
                "enrollment_id": self.enrollment_id,
                "msp_id": self.msp_id,
                "role": self.role.value,
                "public_key": self.public_key.to_bytes(),
            }
        )

    def to_wire(self) -> dict:
        return {
            "enrollment_id": self.enrollment_id,
            "msp_id": self.msp_id,
            "role": self.role.value,
            "public_key": self.public_key.to_bytes(),
            "issuer_signature": self.issuer_signature,
        }


@dataclass(frozen=True)
class SigningIdentity:
    """A certificate plus the matching private key.

    Nodes sign with it; the certificate travels with every signature so
    verifiers can (a) check the CA chain and (b) verify the signature.
    """

    certificate: Certificate
    private_key: PrivateKey

    @property
    def enrollment_id(self) -> str:
        return self.certificate.enrollment_id

    @property
    def msp_id(self) -> str:
        return self.certificate.msp_id

    @property
    def role(self) -> Role:
        return self.certificate.role

    def sign(self, message: bytes) -> bytes:
        return self.private_key.sign(message)
