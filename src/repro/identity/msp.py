"""Membership Service Provider: the trust roots of a channel.

An :class:`MSPRegistry` holds the CA root keys of every organization in a
channel.  Validators consult it to decide whether a certificate presented
inside an endorsement is genuine before matching it against a policy
principal — the step that makes signature policies meaningful.
"""

from __future__ import annotations

from repro.common.errors import IdentityError
from repro.identity.ca import CertificateAuthority
from repro.identity.identity import Certificate
from repro.identity.roles import Role


class MSPRegistry:
    """Maps MSP ids to the CAs trusted for them."""

    def __init__(self) -> None:
        self._authorities: dict[str, CertificateAuthority] = {}
        # Certificate validation is pure (the CA root key never changes
        # after registration), so results are memoised — Fabric's MSP
        # caches deserialized identities the same way.
        self._validation_cache: dict[tuple, bool] = {}

    def register(self, authority: CertificateAuthority) -> None:
        if authority.msp_id in self._authorities:
            raise IdentityError(f"MSP {authority.msp_id!r} already registered")
        self._authorities[authority.msp_id] = authority

    def msp_ids(self) -> list[str]:
        return sorted(self._authorities)

    def is_known(self, msp_id: str) -> bool:
        return msp_id in self._authorities

    def validate_certificate(self, certificate: Certificate) -> bool:
        """Whether the certificate chains to a registered CA."""
        authority = self._authorities.get(certificate.msp_id)
        if authority is None:
            return False
        cache_key = (
            certificate.msp_id,
            certificate.enrollment_id,
            certificate.role,
            certificate.public_key.y,
            certificate.issuer_signature,
        )
        cached = self._validation_cache.get(cache_key)
        if cached is None:
            cached = authority.validate(certificate)
            self._validation_cache[cache_key] = cached
        return cached

    def satisfies_principal(self, certificate: Certificate, msp_id: str, role: Role) -> bool:
        """MSP principal matching: valid cert, right org, right role."""
        if certificate.msp_id != msp_id:
            return False
        if not role.matches(certificate.role):
            return False
        return self.validate_certificate(certificate)
