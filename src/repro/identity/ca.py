"""A per-organization certificate authority.

Each organization runs a CA that enrolls its nodes: the CA derives a
keypair for the node (deterministically, from the CA seed and enrollment
id, so simulator runs are reproducible) and signs a certificate binding
the public key to ``(enrollment_id, msp_id, role)``.
"""

from __future__ import annotations

import itertools

from repro.common.crypto import PrivateKey, PublicKey, generate_keypair
from repro.common.errors import IdentityError
from repro.identity.identity import Certificate, SigningIdentity
from repro.identity.roles import Role

# Each CA instance gets a process-unique root seed component.  Without it,
# the root key would be derivable from the MSP id alone — and an attacker
# could instantiate a look-alike CA that mints certificates the genuine
# registry validates.  (Caught by
# tests/test_policy_properties.py::test_forged_certificates_never_help.)
_CA_INSTANCE_COUNTER = itertools.count(1)


def reset_ca_instance_counter() -> None:
    """Restart CA instance numbering, as if in a fresh process.

    Certificates (and therefore transaction ids) embed keys derived from
    the instance number; reproducibility tests that rebuild the same
    network twice in one process reset it so both builds mint identical
    identities.  Never call this in code that relies on look-alike CAs
    being distinguishable.
    """
    global _CA_INSTANCE_COUNTER
    _CA_INSTANCE_COUNTER = itertools.count(1)


class CertificateAuthority:
    """Issues and validates certificates for one organization (MSP)."""

    def __init__(self, msp_id: str, seed: bytes | None = None) -> None:
        self.msp_id = msp_id
        if seed is None:
            seed = f"instance-{next(_CA_INSTANCE_COUNTER)}".encode("ascii")
        self._seed = seed
        self._root_key: PrivateKey
        self._root_key, self.root_public_key = generate_keypair(
            b"ca:" + msp_id.encode("utf-8") + b":" + seed
        )
        self._issued: dict[str, Certificate] = {}

    def enroll(self, enrollment_id: str, role: Role) -> SigningIdentity:
        """Enroll a node, returning its signing identity.

        Re-enrolling the same id with the same role returns an identity
        with the same keys (deterministic derivation); re-enrolling with a
        different role is an error, as it would in a real CA database.
        """
        existing = self._issued.get(enrollment_id)
        if existing is not None and existing.role is not role:
            raise IdentityError(
                f"{enrollment_id!r} already enrolled with role {existing.role.value!r}"
            )
        # The CA's private seed participates in key derivation — otherwise
        # anyone could re-derive any node's private key from public names.
        private, public = generate_keypair(
            b"id:" + self._seed + b":" + self.msp_id.encode("utf-8")
            + b":" + enrollment_id.encode("utf-8")
        )
        unsigned = Certificate(
            enrollment_id=enrollment_id,
            msp_id=self.msp_id,
            role=role,
            public_key=public,
            issuer_signature=b"",
        )
        signature = self._root_key.sign(unsigned.body_bytes())
        certificate = Certificate(
            enrollment_id=enrollment_id,
            msp_id=self.msp_id,
            role=role,
            public_key=public,
            issuer_signature=signature,
        )
        self._issued[enrollment_id] = certificate
        return SigningIdentity(certificate=certificate, private_key=private)

    def validate(self, certificate: Certificate) -> bool:
        """Whether ``certificate`` was genuinely issued by this CA."""
        if certificate.msp_id != self.msp_id:
            return False
        return self.root_public_key.verify(
            certificate.body_bytes(), certificate.issuer_signature
        )
