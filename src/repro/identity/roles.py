"""Node roles recognised by MSP principals.

Fabric principals name an MSP (organization) and a role within it, e.g.
``Org1MSP.peer``.  Policies match endorsements against these principals.
"""

from __future__ import annotations

import enum


class Role(str, enum.Enum):
    """The role a certificate grants within its organization."""

    PEER = "peer"
    CLIENT = "client"
    ORDERER = "orderer"
    ADMIN = "admin"
    MEMBER = "member"  # wildcard: any enrolled identity of the org

    def matches(self, other: "Role") -> bool:
        """Whether an identity holding ``other`` satisfies this required role.

        ``MEMBER`` is satisfied by any role; ``ADMIN`` identities also count
        as members but not as peers (mirrors Fabric's MSP principal rules).
        """
        if self is Role.MEMBER:
            return True
        return self is other
