"""Wallets: file-backed persistence of signing identities.

Fabric applications keep their enrolled identities in a wallet; this is
the equivalent for the simulator, serializing certificates and private
keys to JSON under a directory so examples and long-running tools can
reload identities across processes.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

from repro.common.crypto import PrivateKey, PublicKey
from repro.common.errors import IdentityError
from repro.identity.identity import Certificate, SigningIdentity
from repro.identity.roles import Role


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text)


def identity_to_json(identity: SigningIdentity) -> dict:
    """Serialize a signing identity (certificate + private key)."""
    certificate = identity.certificate
    return {
        "version": 1,
        "enrollment_id": certificate.enrollment_id,
        "msp_id": certificate.msp_id,
        "role": certificate.role.value,
        "public_key": _b64(certificate.public_key.to_bytes()),
        "issuer_signature": _b64(certificate.issuer_signature),
        "private_key_x": str(identity.private_key.x),
    }


def identity_from_json(document: dict) -> SigningIdentity:
    """Deserialize; validates internal consistency of the key pair."""
    try:
        certificate = Certificate(
            enrollment_id=document["enrollment_id"],
            msp_id=document["msp_id"],
            role=Role(document["role"]),
            public_key=PublicKey.from_bytes(_unb64(document["public_key"])),
            issuer_signature=_unb64(document["issuer_signature"]),
        )
        private_key = PrivateKey(x=int(document["private_key_x"]))
    except (KeyError, ValueError) as exc:
        raise IdentityError(f"malformed wallet entry: {exc}") from exc
    if private_key.public_key().y != certificate.public_key.y:
        raise IdentityError(
            f"wallet entry {certificate.enrollment_id!r}: private key does not "
            "match the certificate's public key"
        )
    return SigningIdentity(certificate=certificate, private_key=private_key)


class FileWallet:
    """A directory of ``<label>.id`` JSON identity files."""

    SUFFIX = ".id"

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, label: str) -> Path:
        if not label or "/" in label or label.startswith("."):
            raise IdentityError(f"invalid wallet label {label!r}")
        return self.directory / f"{label}{self.SUFFIX}"

    def put(self, label: str, identity: SigningIdentity) -> None:
        self._path(label).write_text(
            json.dumps(identity_to_json(identity), indent=2), encoding="utf-8"
        )

    def get(self, label: str) -> SigningIdentity:
        path = self._path(label)
        if not path.is_file():
            raise IdentityError(f"no wallet entry {label!r}")
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise IdentityError(f"corrupt wallet entry {label!r}: {exc}") from exc
        return identity_from_json(document)

    def exists(self, label: str) -> bool:
        return self._path(label).is_file()

    def remove(self, label: str) -> None:
        path = self._path(label)
        if not path.is_file():
            raise IdentityError(f"no wallet entry {label!r}")
        path.unlink()

    def labels(self) -> list[str]:
        return sorted(
            path.name[: -len(self.SUFFIX)]
            for path in self.directory.glob(f"*{self.SUFFIX}")
        )
