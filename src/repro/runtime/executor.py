"""Pluggable execution backends for pure CPU-bound work.

The discrete-event runtime is single-threaded by design — determinism
comes from one scheduler draining one queue.  But the *work* a peer does
per event (1536-bit modexps in batch verification, endorsement signing)
is pure CPU, and a real Fabric peer spreads exactly that work across
cores ("TPC-C on Hyperledger Fabric", arXiv:2112.11277, measures
multi-core peers as the deployment baseline).  This module makes the
placement of that CPU work pluggable without touching its meaning:

* :class:`SerialBackend` — the byte-identical reference.  ``map`` runs
  every task inline, in submission order, in the calling process.
* :class:`ProcessPoolBackend` — a ``multiprocessing`` pool.  Tasks are
  dispatched with ``apply_async`` and the results gathered **in
  submission order**, so the merged output is independent of worker
  scheduling.  Worker functions are plain module-level functions over
  picklable payloads (ints/bytes), and every task returns its result
  plus a PERF-counter delta so the parent can aggregate cross-process
  counters back into :data:`repro.common.tracing.PERF`.

Both backends expose ``workers``: the *shard plan* (how a batch is split
by :func:`plan_shards`) depends only on that number, never on which
backend executes the shards.  A serial backend with ``workers=4``
computes the identical per-shard work the pool would, inline — which is
what makes the ``parallel-equivalence`` simulation invariant (process
run byte-identical to the serial reference) checkable at all.

Selection follows the storage-factory idiom: explicit argument over the
``REPRO_EXECUTOR`` environment variable over the serial default.  The
spec accepts an inline worker count (``process:4``); otherwise
``REPRO_EXECUTOR_WORKERS`` sets it.

:class:`ValidationCostModel` is the simulated-time face of the same
plan: it charges a block's validation *service time* as the makespan of
the shard plan over the configured worker count, so simulated
throughput reflects the parallelism that the offload mechanism (or real
multi-core hardware) would deliver — honestly decoupled from the wall
clock of the host this simulator happens to run on.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.common.errors import ConfigError
from repro.common.tracing import PERF

ENV_VAR = "REPRO_EXECUTOR"
ENV_WORKERS = "REPRO_EXECUTOR_WORKERS"

#: Recognised backend kinds (the spec may carry an inline worker count,
#: e.g. ``process:4``).
EXECUTOR_KINDS = ("serial", "process")

_DEFAULT_PROCESS_WORKERS = 4


def _parse_spec(spec: str) -> tuple[str, Optional[int]]:
    """Split ``"kind"`` / ``"kind:N"`` into ``(kind, workers-or-None)``."""
    kind, _, arg = spec.partition(":")
    if kind not in EXECUTOR_KINDS:
        known = ", ".join(EXECUTOR_KINDS)
        raise ConfigError(f"unknown executor kind {spec!r}: pick one of {known}")
    workers: Optional[int] = None
    if arg:
        try:
            workers = int(arg)
        except ValueError:
            raise ConfigError(f"invalid worker count in executor spec {spec!r}")
        if workers < 1:
            raise ConfigError(f"executor spec {spec!r} needs at least 1 worker")
    return kind, workers


def resolve_executor_kind(kind: Optional[str] = None) -> str:
    """Resolve an executor spec: explicit over ``REPRO_EXECUTOR`` over serial."""
    resolved = kind or os.environ.get(ENV_VAR) or "serial"
    _parse_spec(resolved)  # validate eagerly, at configuration time
    return resolved


def resolve_worker_count(
    workers: Optional[int] = None, spec: Optional[str] = None
) -> int:
    """Worker count: explicit over spec-inline over env over kind default."""
    if workers is None:
        kind, inline = _parse_spec(spec if spec is not None else resolve_executor_kind())
        if inline is not None:
            workers = inline
        else:
            env = os.environ.get(ENV_WORKERS)
            if env:
                try:
                    workers = int(env)
                except ValueError:
                    raise ConfigError(f"invalid {ENV_WORKERS} value {env!r}")
            else:
                workers = _DEFAULT_PROCESS_WORKERS if kind == "process" else 1
    if workers < 1:
        raise ConfigError(f"executor worker count must be >= 1, got {workers}")
    return workers


# ---------------------------------------------------------------------------
# Deterministic shard planning
# ---------------------------------------------------------------------------

def plan_shards(weights: Sequence[int], shards: int) -> list[list[int]]:
    """Greedy LPT assignment of weighted items to at most ``shards`` bins.

    Returns a list of bins, each a sorted list of item indices; empty bins
    are dropped.  The plan is a pure function of ``(weights, shards)`` —
    items are placed heaviest first (ties by index) onto the least-loaded
    bin (ties by bin index) — so every backend, every process, and the
    cost model all derive the same plan from the same inputs.
    """
    if shards < 1:
        raise ConfigError(f"shard count must be >= 1, got {shards}")
    if not weights:
        return []
    if shards == 1:
        return [list(range(len(weights)))]
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    loads = [0] * shards
    bins: list[list[int]] = [[] for _ in range(shards)]
    for i in order:
        target = min(range(shards), key=lambda j: (loads[j], j))
        bins[target].append(i)
        loads[target] += weights[i]
    return [sorted(b) for b in bins if b]


def shard_makespan(weights: Sequence[int], shards: int) -> int:
    """Max bin load of the :func:`plan_shards` plan (0 for no items)."""
    plan = plan_shards(weights, shards)
    return max((sum(weights[i] for i in b) for b in plan), default=0)


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

class ExecutionBackend:
    """Where pure CPU-bound tasks run.  ``map`` preserves payload order."""

    kind = "abstract"
    #: True when tasks execute in another process (their PERF deltas must
    #: then be merged back by the caller — inline tasks already counted).
    remote = False

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ConfigError(f"executor worker count must be >= 1, got {workers}")
        self.workers = workers

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def map(self, fn: Callable, payloads: Sequence) -> list:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any pooled resources (idempotent)."""

    def describe(self) -> str:
        return f"{self.kind}:{self.workers}"


class SerialBackend(ExecutionBackend):
    """The reference: every task runs inline, in order, in-process."""

    kind = "serial"

    def map(self, fn: Callable, payloads: Sequence) -> list:
        PERF.executor_tasks += len(payloads)
        return [fn(payload) for payload in payloads]


def _init_worker() -> None:
    """Pool-worker initializer: pin the child to the serial reference.

    A forked child inherits the parent's module state — including the
    active :class:`ProcessPoolBackend` and any ``REPRO_EXECUTOR`` env —
    so without this a task could try to re-offload into a pool handle
    that only works from the parent.
    """
    global _ACTIVE, _ACTIVE_SPEC, _PINNED
    os.environ[ENV_VAR] = "serial"
    os.environ.pop(ENV_WORKERS, None)
    _PINNED = None
    _ACTIVE = None
    _ACTIVE_SPEC = None


class ProcessPoolBackend(ExecutionBackend):
    """A ``multiprocessing`` pool with deterministic ordered merge.

    The pool is created lazily on first ``map`` (fork start method where
    available, so workers inherit warmed caches; spawn otherwise).  Each
    payload becomes one ``apply_async`` task; results are gathered in
    submission order, making the merged output independent of which
    worker finished first.
    """

    kind = "process"
    remote = True

    def __init__(self, workers: int = _DEFAULT_PROCESS_WORKERS) -> None:
        super().__init__(workers)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                ctx = multiprocessing.get_context("spawn")
            self._pool = ctx.Pool(self.workers, initializer=_init_worker)
        return self._pool

    def map(self, fn: Callable, payloads: Sequence) -> list:
        if not payloads:
            return []
        PERF.executor_tasks += len(payloads)
        PERF.executor_remote_tasks += len(payloads)
        pool = self._ensure_pool()
        handles = [pool.apply_async(fn, (payload,)) for payload in payloads]
        return [handle.get() for handle in handles]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


# ---------------------------------------------------------------------------
# The active backend
# ---------------------------------------------------------------------------

_PINNED: Optional[ExecutionBackend] = None
_ACTIVE: Optional[ExecutionBackend] = None
_ACTIVE_SPEC: Optional[tuple] = None


def _build(kind: str, workers: int) -> ExecutionBackend:
    if kind == "process":
        return ProcessPoolBackend(workers)
    return SerialBackend(workers)


def current_backend() -> ExecutionBackend:
    """The backend hot call sites offload through.

    A pinned backend (:func:`set_backend`) wins; otherwise the
    environment spec is re-resolved on every call — the toggle idiom the
    benches rely on — and the cached instance is rebuilt (previous pool
    shut down) whenever the resolved ``(kind, workers)`` changes.
    """
    if _PINNED is not None:
        return _PINNED
    global _ACTIVE, _ACTIVE_SPEC
    spec = resolve_executor_kind()
    kind, _ = _parse_spec(spec)
    workers = resolve_worker_count(spec=spec)
    if _ACTIVE is None or _ACTIVE_SPEC != (kind, workers):
        if _ACTIVE is not None:
            _ACTIVE.shutdown()
        _ACTIVE = _build(kind, workers)
        _ACTIVE_SPEC = (kind, workers)
    return _ACTIVE


def set_backend(
    kind: Optional[str] = None, workers: Optional[int] = None
) -> ExecutionBackend:
    """Pin the active backend explicitly (pass ``None`` to unpin).

    Pinning bypasses the environment entirely — ``SimulationConfig``
    pins via the spec it recorded so a replayed trace reproduces the
    original run's executor even under a different environment.
    """
    global _PINNED
    if _PINNED is not None:
        _PINNED.shutdown()
        _PINNED = None
    if kind is None:
        return current_backend()
    spec = resolve_executor_kind(kind)
    parsed_kind, _ = _parse_spec(spec)
    _PINNED = _build(parsed_kind, resolve_worker_count(workers, spec=spec))
    return _PINNED


def reset_backend() -> None:
    """Unpin and drop the cached backend (test/bench isolation hook)."""
    global _PINNED, _ACTIVE, _ACTIVE_SPEC
    for backend in (_PINNED, _ACTIVE):
        if backend is not None:
            backend.shutdown()
    _PINNED = None
    _ACTIVE = None
    _ACTIVE_SPEC = None


@atexit.register
def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter teardown
    reset_backend()


# ---------------------------------------------------------------------------
# Simulated-time cost model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ValidationCostModel:
    """Charge block validation its simulated *service time*.

    The discrete-event clock normally treats validation as instantaneous;
    this model makes it a service station: committing a block costs
    ``per_transaction * n_tx + per_signature * makespan`` simulated
    seconds, where the makespan comes from :func:`plan_shards` over the
    block's per-key signature groups and the configured worker count —
    the *same* plan the executor uses for real offload, so the model
    charges exactly the parallelism that actually executed.  ``workers``
    of ``None`` follows :func:`current_backend`, which is how the
    workers-vs-throughput ablation varies parallelism from the
    environment.

    Defaults are calibrated against the measured serial cost of the
    batched verifier on this codebase's 1536-bit group (~1 simulated
    unit per signature, a quarter unit of per-transaction bookkeeping).
    """

    per_signature: float = 1.0
    per_transaction: float = 0.25
    workers: Optional[int] = None

    def effective_workers(self) -> int:
        return self.workers if self.workers is not None else current_backend().workers

    def service_seconds(self, group_sizes: Sequence[int], tx_count: int) -> float:
        makespan = shard_makespan(list(group_sizes), self.effective_workers())
        return self.per_transaction * tx_count + self.per_signature * makespan
