"""Parallel endorsement collection over the message bus (Fabric Gateway).

The sequential gateway contacts endorsers one blocking call at a time.
With a runtime attached, :meth:`TransactionRuntime.endorse_async` instead
dispatches the plan's opening wave as ``endorse-proposal`` messages — so
the endorsers simulate in parallel simulated time — and an
:class:`EndorsementCollector` gathers the ``endorse-result`` replies:

* as soon as the collected responses satisfy every policy validation will
  apply, the quorum is complete: the envelope is assembled, signed and
  submitted through the normal ordering path (late replies are discarded);
* an endorser that fails, crashes, or exceeds the wave timeout triggers
  *escalation* — the next backup from the plan is drafted in, exactly like
  the Fabric Gateway's retry logic;
* when the plan is exhausted without a satisfying quorum the transaction
  future fails with a typed :class:`~repro.common.errors.EndorsementError`
  (:class:`~repro.common.errors.EndorsementTimeoutError` when only
  timeouts were observed, otherwise
  :class:`~repro.common.errors.EndorsementPlanExhaustedError`) — with one
  legacy exception: if *every* candidate endorsed successfully and the
  pool still cannot satisfy the policy, the transaction is submitted
  anyway so validation can reject it, preserving the endorse-everywhere
  semantics the paper's §IV-A attack probes rely on.

Everything runs inside scheduler callbacks — no nested event-loop runs —
so plans interleave freely with ordering, delivery, and gossip traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.errors import (
    EndorsementError,
    EndorsementPlanExhaustedError,
    EndorsementTimeoutError,
    ReproError,
)
from repro.common.tracing import PERF
from repro.runtime.runtime import (
    CLIENT_SOURCE,
    TOPIC_ENDORSE,
    PendingTransaction,
    TransactionRuntime,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.client.gateway import Gateway
    from repro.peer.node import PeerNode
    from repro.policy.planner import EndorsementPlan
    from repro.protocol.proposal import Proposal
    from repro.protocol.response import ProposalResponse


class EndorsementCollector:
    """Collects one plan's proposal responses and drives escalation."""

    def __init__(
        self,
        runtime: TransactionRuntime,
        gateway: "Gateway",
        proposal: "Proposal",
        plan: "EndorsementPlan",
        pending: PendingTransaction,
        timeout: float,
    ) -> None:
        self._runtime = runtime
        self._gateway = gateway
        self._proposal = proposal
        self._plan = plan
        self._pending = pending
        self._timeout = timeout
        # Response ordering must not depend on reply arrival order (the
        # envelope's endorsement tuple feeds signed bytes), so responses
        # are always re-sorted into plan-candidate order.
        self._order = {peer.name: i for i, peer in enumerate(plan.candidates)}
        self._backups: list["PeerNode"] = list(plan.backups)
        self._responses: dict[str, "ProposalResponse"] = {}
        self._failures: dict[str, EndorsementError] = {}
        self._outstanding: set[str] = set()
        self._timer = None
        self._done = False

    # -- dispatch -------------------------------------------------------------
    def start(self) -> None:
        for peer in self._plan.primary:
            self._dispatch(peer, escalation=False)
        self._arm_timer()

    def _dispatch(self, peer: "PeerNode", escalation: bool) -> None:
        PERF.proposals_sent += 1
        if escalation:
            PERF.plan_escalations += 1
        tracer = self._runtime.network.tracer
        if tracer:
            tracer.record(
                "client", "send-proposal", self._proposal.tx_id,
                to=peer.name, function=self._proposal.function,
                plan="escalation" if escalation else "primary",
            )
        self._outstanding.add(peer.name)
        self._runtime.bus.send(CLIENT_SOURCE, peer.name, TOPIC_ENDORSE, self._proposal)

    # -- progress -------------------------------------------------------------
    def on_result(self, peer_name: str, outcome) -> None:
        """Handle one ``endorse-result`` reply (response or error)."""
        if self._done:
            return
        self._outstanding.discard(peer_name)
        if isinstance(outcome, EndorsementError):
            self._failures[peer_name] = outcome
        else:
            # A straggler that beat its timeout verdict to the wire still
            # counts — drop the provisional timeout failure.
            self._failures.pop(peer_name, None)
            self._responses[peer_name] = outcome.response
        self._check_progress()

    def _ordered_responses(self) -> list["ProposalResponse"]:
        return [
            self._responses[name]
            for name in sorted(self._responses, key=self._order.__getitem__)
        ]

    def _check_progress(self) -> None:
        responses = self._ordered_responses()
        if responses and self._gateway._quorum_satisfied(self._proposal, responses):
            self._finish(responses)
            return
        if self._outstanding:
            return  # wait for more replies (or the timeout)
        if self._backups:
            self._dispatch(self._backups.pop(0), escalation=True)
            self._arm_timer()
            return
        if not self._failures and responses:
            # Every candidate endorsed OK and the pool still cannot satisfy
            # the policy: submit anyway and let validation reject (legacy
            # endorse-everywhere semantics; see module docstring).
            self._finish(responses)
            return
        self._terminate()

    # -- timeout --------------------------------------------------------------
    def _arm_timer(self) -> None:
        self._cancel_timer()
        if self._timeout > 0:
            self._timer = self._runtime.scheduler.call_later(
                self._timeout, self._on_timeout
            )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if self._done:
            return
        PERF.plan_timeouts += 1
        stragglers = sorted(self._outstanding)
        self._outstanding.clear()
        for name in stragglers:
            self._failures.setdefault(
                name,
                EndorsementTimeoutError(
                    f"peer {name} did not respond to proposal "
                    f"{self._proposal.tx_id} within {self._timeout:g}s"
                ),
            )
        tracer = self._runtime.network.tracer
        if tracer:
            tracer.record(
                "client", "endorse-timeout", self._proposal.tx_id,
                waiting_on=stragglers,
            )
        self._check_progress()

    # -- completion -----------------------------------------------------------
    def _retire(self) -> None:
        self._done = True
        self._cancel_timer()
        self._runtime._collectors.pop(self._proposal.tx_id, None)

    def _finish(self, responses: list["ProposalResponse"]) -> None:
        self._retire()
        try:
            envelope, payload = self._gateway._finalize_endorsement(
                self._proposal, responses
            )
        except ReproError as exc:
            self._pending._fail(exc)
            return
        self._pending.envelope = envelope
        self._pending.client_payload = payload
        tracer = self._runtime.network.tracer
        if tracer:
            tracer.record(
                "client", "assemble+submit", envelope.tx_id,
                endorsements=len(envelope.endorsements),
            )
        try:
            self._runtime.submit_pending(self._pending)
        except ReproError as exc:
            # Backpressure on the fan-out path: the collector finishes
            # inside a scheduler event, so a refused submission (e.g. the
            # mempool bound) must fail the future, not unwind the loop.
            self._pending._fail(exc)

    def _terminate(self) -> None:
        self._retire()
        PERF.plan_failures += 1
        tx_id = self._proposal.tx_id
        names = ", ".join(sorted(self._failures)) or "none"
        timeouts_only = bool(self._failures) and all(
            isinstance(exc, EndorsementTimeoutError)
            for exc in self._failures.values()
        )
        error: EndorsementError
        if timeouts_only:
            error = EndorsementTimeoutError(
                f"endorsement plan for transaction {tx_id} timed out: "
                f"no response from {names} and no backups remain"
            )
        else:
            error = EndorsementPlanExhaustedError(
                f"endorsement plan for transaction {tx_id} exhausted all "
                f"{self._plan.size} candidate endorsers without a satisfying "
                f"quorum; failed: {names}"
            )
            for exc in self._failures.values():
                response = getattr(exc, "response", None)
                if response is not None:
                    error.response = response  # type: ignore[attr-defined]
        error.failures = dict(self._failures)  # type: ignore[attr-defined]
        tracer = self._runtime.network.tracer
        if tracer:
            tracer.record(
                "client", "endorse-failed", tx_id,
                reason=type(error).__name__, failed=sorted(self._failures),
            )
        self._pending._fail(error)
