"""The event-driven transaction runtime.

A deterministic, seedable discrete-event scheduler
(:class:`EventScheduler`), a message bus with per-link queues
(:class:`MessageBus`), pluggable latency/fault models
(:class:`LatencyModel`, :class:`FaultInjector`), and the
:class:`TransactionRuntime` that rewires a
:class:`~repro.network.network.FabricNetwork` onto them so hundreds of
transactions can race through endorsement → ordering → delivery
concurrently.  Attach one with ``network.attach_runtime(seed=...)``.

The package also hosts the pluggable :mod:`execution backends
<repro.runtime.executor>`: the serial byte-identical reference and the
``multiprocessing`` pool that CPU-bound crypto offloads through, selected
via ``REPRO_EXECUTOR`` / ``REPRO_EXECUTOR_WORKERS``.
"""

from repro.runtime.bus import Endpoint, Message, MessageBus
from repro.runtime.clock import SimulatedClock
from repro.runtime.executor import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ValidationCostModel,
    current_backend,
    plan_shards,
    reset_backend,
    resolve_executor_kind,
    resolve_worker_count,
    set_backend,
    shard_makespan,
)
from repro.runtime.faults import (
    FaultInjector,
    LatencyModel,
    lossy_faults,
    no_latency,
    wan_latency,
)
from repro.runtime.runtime import (
    DEFAULT_BATCH_TIMEOUT,
    PendingTransaction,
    TransactionRuntime,
    resolve_mempool_limit,
)
from repro.runtime.scheduler import EventScheduler, ScheduledEvent

__all__ = [
    "DEFAULT_BATCH_TIMEOUT",
    "Endpoint",
    "EventScheduler",
    "ExecutionBackend",
    "FaultInjector",
    "LatencyModel",
    "Message",
    "MessageBus",
    "PendingTransaction",
    "ProcessPoolBackend",
    "ScheduledEvent",
    "SerialBackend",
    "SimulatedClock",
    "TransactionRuntime",
    "ValidationCostModel",
    "current_backend",
    "lossy_faults",
    "no_latency",
    "plan_shards",
    "reset_backend",
    "resolve_executor_kind",
    "resolve_mempool_limit",
    "resolve_worker_count",
    "set_backend",
    "shard_makespan",
    "wan_latency",
]
