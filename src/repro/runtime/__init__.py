"""The event-driven transaction runtime.

A deterministic, seedable discrete-event scheduler
(:class:`EventScheduler`), a message bus with per-link queues
(:class:`MessageBus`), pluggable latency/fault models
(:class:`LatencyModel`, :class:`FaultInjector`), and the
:class:`TransactionRuntime` that rewires a
:class:`~repro.network.network.FabricNetwork` onto them so hundreds of
transactions can race through endorsement → ordering → delivery
concurrently.  Attach one with ``network.attach_runtime(seed=...)``.
"""

from repro.runtime.bus import Endpoint, Message, MessageBus
from repro.runtime.clock import SimulatedClock
from repro.runtime.faults import (
    FaultInjector,
    LatencyModel,
    lossy_faults,
    no_latency,
    wan_latency,
)
from repro.runtime.runtime import (
    DEFAULT_BATCH_TIMEOUT,
    PendingTransaction,
    TransactionRuntime,
)
from repro.runtime.scheduler import EventScheduler, ScheduledEvent

__all__ = [
    "DEFAULT_BATCH_TIMEOUT",
    "Endpoint",
    "EventScheduler",
    "FaultInjector",
    "LatencyModel",
    "Message",
    "MessageBus",
    "PendingTransaction",
    "ScheduledEvent",
    "SimulatedClock",
    "TransactionRuntime",
    "lossy_faults",
    "no_latency",
    "wan_latency",
]
