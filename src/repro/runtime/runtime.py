"""The event-driven transaction runtime: pipelined submit/order/deliver.

The seed simulator ran Fig. 2 as one synchronous call chain — submit an
envelope, flush the orderer, read the flag — so exactly one transaction
was ever in flight and ``batch_size`` never mattered.
:class:`TransactionRuntime` decouples the three phases onto the message
bus:

* **submit** — :meth:`Gateway.submit_async` endorses and assembles as
  before (endorsement is a synchronous client RPC round in Fabric too),
  then posts the envelope on the ``client → orderer`` link and returns a
  :class:`PendingTransaction` future;
* **order** — the orderer consumes envelopes from its inbox, cutting
  blocks by batch *size* immediately and by batch *timeout* via a
  scheduler timer armed when the first envelope of a batch arrives;
* **deliver** — each cut block is replicated through Raft and then sent
  to every peer's inbox on its own ``orderer → peer`` link; a peer
  validates + commits when the message arrives, and once every peer has
  committed a block the runtime resolves the futures of its
  transactions;
* **gossip** — private-data dissemination rides the bus as
  ``gossip-push`` messages, so whether plaintext beats the block to a
  member peer is a genuine race governed by the latency model.

Hundreds of transactions can be in flight at once; MVCC conflicts, block
packing, and gossip/delivery races all emerge from the schedule.  With a
fixed seed the schedule — and therefore every block and every validation
flag — is exactly reproducible.

The synchronous API stays available: with a runtime attached,
``submit_transaction`` becomes ``submit_async`` + ``run_until_committed``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Optional

from repro.chaincode.rwset import PrivateCollectionWrites
from repro.client.gateway import SubmitResult
from repro.common.errors import (
    ConfigError,
    EndorsementError,
    MempoolFullError,
    PrunedBacklogError,
    SchedulerError,
)
from repro.gossip.anti_entropy import ANTI_ENTROPY_TOPICS, AntiEntropyEngine
from repro.ledger.block import Block
from repro.ledger.snapshot import bootstrap_from_package
from repro.protocol.transaction import TransactionEnvelope, ValidationCode
from repro.runtime.bus import Message, MessageBus
from repro.runtime.executor import ValidationCostModel
from repro.runtime.faults import FaultInjector, LatencyModel
from repro.runtime.scheduler import DEFAULT_MAX_EVENTS, EventScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import FabricNetwork
    from repro.peer.node import PeerNode
    from repro.runtime.endorse import EndorsementCollector

#: Simulated time the orderer waits before cutting an under-filled batch.
DEFAULT_BATCH_TIMEOUT = 10.0

#: Environment override for the submit-pipeline mempool bound.
ENV_MEMPOOL_LIMIT = "REPRO_MEMPOOL_LIMIT"


def resolve_mempool_limit(limit: Optional[int] = None) -> Optional[int]:
    """Mempool bound: explicit over ``REPRO_MEMPOOL_LIMIT`` over unbounded."""
    if limit is None:
        env = os.environ.get(ENV_MEMPOOL_LIMIT)
        if env:
            try:
                limit = int(env)
            except ValueError:
                raise ConfigError(f"invalid {ENV_MEMPOOL_LIMIT} value {env!r}")
    if limit is not None and limit < 1:
        raise ConfigError(f"mempool limit must be >= 1, got {limit}")
    return limit

TOPIC_SUBMIT = "submit"
TOPIC_DELIVER = "deliver-block"
TOPIC_GOSSIP = "gossip-push"
TOPIC_GOSSIP_BATCH = "gossip-batch"
TOPIC_ENDORSE = "endorse-proposal"
TOPIC_ENDORSE_RESULT = "endorse-result"
TOPIC_SNAPSHOT_SIG = "snapshot-sig"

#: Every topic carrying private-data gossip traffic (dissemination in
#: both modes plus the anti-entropy exchange) — what a "gossip blackout"
#: fault window or a gossip latency override should cover.
GOSSIP_TOPICS = (TOPIC_GOSSIP, TOPIC_GOSSIP_BATCH) + ANTI_ENTROPY_TOPICS

ORDERER_ENDPOINT = "orderer"
CLIENT_SOURCE = "client"
GATEWAY_ENDPOINT = "gateway"


class PendingTransaction:
    """A future resolved when every peer has committed the transaction.

    With the endorsement fan-out path the future is created *before* an
    envelope exists (endorsement itself happens on the bus); the envelope
    is attached when the plan's quorum completes, and an endorsement that
    cannot complete fails the future with a typed error instead.
    """

    def __init__(
        self,
        envelope: Optional[TransactionEnvelope],
        client_payload: bytes = b"",
        tx_id: Optional[str] = None,
    ) -> None:
        self.envelope = envelope
        self.client_payload = client_payload
        self.submitted_at: float = 0.0
        self.committed_at: Optional[float] = None
        self.error: Optional[Exception] = None
        self._tx_id = tx_id if tx_id is not None else envelope.tx_id  # type: ignore[union-attr]
        self._result: Optional[SubmitResult] = None
        self._callbacks: list[Callable[["PendingTransaction"], None]] = []

    @property
    def tx_id(self) -> str:
        return self._tx_id

    @property
    def done(self) -> bool:
        return self._result is not None or self.error is not None

    def result(self) -> SubmitResult:
        if self.error is not None:
            raise self.error
        if self._result is None:
            raise SchedulerError(
                f"transaction {self.tx_id} has not committed yet — "
                "run the scheduler (runtime.run / run_until_committed) first"
            )
        return self._result

    def add_done_callback(self, callback: Callable[["PendingTransaction"], None]) -> None:
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _resolve(self, status: ValidationCode, at: float) -> None:
        self._result = SubmitResult(
            tx_id=self.tx_id,
            status=status,
            payload=self.client_payload,
            envelope=self.envelope,
        )
        self.committed_at = at
        self._fire_callbacks()

    def _fail(self, error: Exception) -> None:
        """Resolve the future exceptionally (endorsement could not finish)."""
        self.error = error
        self._fire_callbacks()


class _BlockProgress:
    """Delivery bookkeeping for one dispatched block."""

    __slots__ = ("expected", "committed")

    def __init__(self, expected: int) -> None:
        self.expected = expected
        self.committed = 0


class TransactionRuntime:
    """Owns the scheduler + bus and rewires a network onto them."""

    def __init__(
        self,
        network: "FabricNetwork",
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultInjector] = None,
        batch_timeout: float = DEFAULT_BATCH_TIMEOUT,
        mempool_limit: Optional[int] = None,
        validate_cost: Optional[ValidationCostModel] = None,
    ) -> None:
        self.network = network
        self.scheduler = EventScheduler(seed=seed)
        self.bus = MessageBus(self.scheduler, latency=latency, faults=faults)
        self.batch_timeout = batch_timeout
        #: Max transactions in flight; ``None`` keeps the pipeline open-loop.
        self.mempool_limit = resolve_mempool_limit(mempool_limit)
        #: Submissions refused by the mempool bound.
        self.mempool_rejections = 0
        #: Optional simulated-time model charging each block's validation
        #: its service time (see :class:`ValidationCostModel`); ``None``
        #: keeps commits instantaneous — the byte-identical legacy path.
        self.validate_cost = validate_cost
        self.transactions_submitted = 0
        self.transactions_resolved = 0
        #: Per-peer validation-station bookkeeping (cost model only).
        self._busy_until: dict[str, float] = {}
        self._scheduled_height: dict[str, int] = {}
        self._pending: dict[str, PendingTransaction] = {}
        self._peers: dict[str, "PeerNode"] = {}
        self._deliver: dict[str, Callable[[Block], object]] = {}
        self._blocks: dict[int, _BlockProgress] = {}
        self._inbound: dict[str, dict[int, Block]] = {}
        self._batch_timer = None
        self._crashed: set[str] = set()
        #: Messages dropped because their destination peer was down.  Kept
        #: separate from the fault injector's drop count: a crash is a node
        #: fault, not a link fault, and liveness accounting treats it so.
        self.crash_drops = 0
        self._crash_listeners: list[Callable[["PeerNode"], None]] = []
        self._restart_listeners: list[Callable[["PeerNode"], None]] = []
        #: Latest sealed-snapshot height per peer — the orderer's backlog
        #: prune floor is the minimum over *all* peers (unsealed = 0), so
        #: no registered consumer's cursor can fall below the offset.
        self._sealed_heights: dict[str, int] = {}
        #: Active endorsement collectors, keyed by tx id.  A collector is
        #: registered when a plan's first wave is dispatched and removed
        #: when it finishes (quorum reached or failed); late responses for
        #: finished plans are simply discarded.
        self._collectors: dict[str, "EndorsementCollector"] = {}

        #: Early-aborted tx ids waiting for their conflicting block to
        #: fully commit before resolving (keeps abort-observation timing
        #: aligned with the post-commit abort the client would otherwise
        #: have seen), keyed by that block's number.
        self._aborts_by_block: dict[int, list[str]] = {}

        self.bus.register(ORDERER_ENDPOINT, self._on_orderer_message)
        self.bus.register(GATEWAY_ENDPOINT, self._on_gateway_message)
        # Take over block delivery: the dispatcher fans each cut block out
        # onto per-peer links instead of calling peers inline.  No replay —
        # already-delivered blocks reached the peers synchronously.
        network.orderer.clear_delivery_handlers()
        network.orderer.register_delivery(self._dispatch_block, replay=False)
        network.orderer.on_early_abort(self._on_early_abort)
        for peer in network.peers():
            self.register_peer(peer, network.delivery_handler_for(peer))
        network.gossip.transport = self._send_gossip
        network.gossip.batch_transport = self._send_gossip_batch
        network.gossip.snapshot_transport = self._send_snapshot_sig
        # The run seed drives deterministic push-set rotation and the
        # anti-entropy source rotation — identical across ablation legs.
        network.gossip.rotation_seed = seed
        #: Digest-driven anti-entropy loop; ``None`` when the network's
        #: cadence is 0 (the on-demand reconciler remains available).
        self.anti_entropy: Optional[AntiEntropyEngine] = None
        every = getattr(network, "anti_entropy_every", 0.0)
        if every:
            self.anti_entropy = AntiEntropyEngine(self, every)
            self.anti_entropy.arm()

    # -- introspection -------------------------------------------------------
    @property
    def now(self) -> float:
        return self.scheduler.now

    def in_flight(self) -> int:
        """Transactions submitted but not yet resolved."""
        return len(self._pending)

    # -- topology ------------------------------------------------------------
    def register_peer(self, peer: "PeerNode", deliver: Callable[[Block], object]) -> None:
        """Give ``peer`` an inbox; late joiners catch up synchronously.

        The catch-up pulls only the blocks past the peer's current height
        through the orderer's cursor — O(missed blocks), not O(chain).  A
        peer whose height predates a pruned backlog must be bootstrapped
        from a snapshot first (:meth:`join_peer` does both).
        """
        for block in self.network.orderer.blocks_since(peer.ledger.blockchain.height):
            deliver(block)
        self._peers[peer.name] = peer
        self._deliver[peer.name] = deliver
        self.bus.register(peer.name, self._peer_handler(peer))
        peer.on_snapshot_seal(self._on_peer_sealed)
        record = peer.latest_sealed_snapshot()
        if record is not None:
            self._sealed_heights[peer.name] = record.manifest.height

    def join_peer(self, peer: "PeerNode", deliver: Callable[[Block], object]) -> None:
        """Admit a newly created peer, bootstrapping from a snapshot.

        When snapshotting is on and some live peer holds a sealed
        snapshot ahead of the joiner, the joiner loads that package and
        replays only the tail — the checkpointed-bootstrap path.  Without
        one (or with snapshots off) it falls back to full replay via
        :meth:`register_peer`, which requires the backlog to be unpruned.
        """
        if self.network.snapshot_every:
            package = self.network.gossip.fetch_snapshot(
                peer, min_height=self.network.orderer.backlog_offset
            )
            if package is not None and package.manifest.height > peer.ledger.height:
                bootstrap_from_package(peer.ledger, package, peer.channel)
        self.register_peer(peer, deliver)

    # -- the submit phase ----------------------------------------------------
    def submit(
        self, envelope: TransactionEnvelope, client_payload: bytes = b""
    ) -> PendingTransaction:
        """Enqueue an assembled envelope for ordering; returns a future."""
        pending = PendingTransaction(envelope, client_payload)
        pending.submitted_at = self.now
        self.submit_pending(pending)
        return pending

    def submit_pending(self, pending: PendingTransaction) -> None:
        """Enqueue a future whose envelope was just attached (fan-out path)."""
        if pending.envelope is None:
            raise ConfigError(
                f"transaction {pending.tx_id} has no envelope to submit"
            )
        if pending.tx_id in self._pending:
            raise ConfigError(f"transaction {pending.tx_id} is already in flight")
        if self.mempool_limit is not None and len(self._pending) >= self.mempool_limit:
            self.mempool_rejections += 1
            tracer = self.network.tracer
            if tracer:
                tracer.record(
                    "runtime", "mempool-reject", pending.tx_id,
                    limit=self.mempool_limit,
                )
            raise MempoolFullError(pending.tx_id, self.mempool_limit)
        self._pending[pending.tx_id] = pending
        self.transactions_submitted += 1
        self.bus.send(CLIENT_SOURCE, ORDERER_ENDPOINT, TOPIC_SUBMIT, pending.envelope)

    # -- the endorsement fan-out ---------------------------------------------
    def endorse_async(
        self,
        gateway,
        proposal,
        plan,
        timeout: float,
    ) -> PendingTransaction:
        """Run an endorsement plan over the bus; returns the tx future.

        Proposals for the plan's opening wave are dispatched in parallel
        sim-time as ``endorse-proposal`` messages; the collector gathers
        ``endorse-result`` replies, completes as soon as the responses
        satisfy the policy, escalates to backups on failure/timeout, and
        finally assembles + submits the envelope through the normal
        ordering path — or fails the future with a typed
        :class:`~repro.common.errors.EndorsementError`.
        """
        from repro.runtime.endorse import EndorsementCollector

        pending = PendingTransaction(None, tx_id=proposal.tx_id)
        pending.submitted_at = self.now
        collector = EndorsementCollector(
            runtime=self,
            gateway=gateway,
            proposal=proposal,
            plan=plan,
            pending=pending,
            timeout=timeout,
        )
        self._collectors[proposal.tx_id] = collector
        collector.start()
        return pending

    def _on_gateway_message(self, message: Message) -> None:
        tx_id, peer_name, outcome = message.payload
        collector = self._collectors.get(tx_id)
        if collector is not None:
            collector.on_result(peer_name, outcome)

    # -- the ordering phase --------------------------------------------------
    def _on_orderer_message(self, message: Message) -> None:
        envelope: TransactionEnvelope = message.payload
        tracer = self.network.tracer
        if tracer:
            tracer.record(
                ORDERER_ENDPOINT, "enqueue-envelope", envelope.tx_id,
                pending=self.network.orderer.pending_count + 1,
            )
        self.network.orderer.submit(envelope)
        self._update_batch_timer()

    def _update_batch_timer(self) -> None:
        """Arm the batch-timeout timer iff a partial batch is pending."""
        if self.network.orderer.pending_count == 0:
            if self._batch_timer is not None:
                self._batch_timer.cancel()
                self._batch_timer = None
        elif self._batch_timer is None:
            self._batch_timer = self.scheduler.call_later(
                self.batch_timeout, self._batch_timeout_fired
            )

    def _batch_timeout_fired(self) -> None:
        self._batch_timer = None
        orderer = self.network.orderer
        if orderer.pending_count:
            tracer = self.network.tracer
            if tracer:
                tracer.record(
                    ORDERER_ENDPOINT, "batch-timeout", pending=orderer.pending_count
                )
            orderer.flush()
        self._update_batch_timer()

    # -- the delivery phase --------------------------------------------------
    def _dispatch_block(self, block: Block) -> None:
        """Orderer delivery handler: fan the block out per peer link."""
        self._blocks[block.header.number] = _BlockProgress(expected=len(self._peers))
        for name in self._peers:
            self.bus.send(ORDERER_ENDPOINT, name, TOPIC_DELIVER, block)
        # The cut consumed the pending batch; re-arm for any remainder.
        self._update_batch_timer()

    def _peer_handler(self, peer: "PeerNode") -> Callable[[Message], None]:
        def handle(message: Message) -> None:
            if peer.name in self._crashed:
                self.crash_drops += 1
                return
            if message.topic == TOPIC_DELIVER:
                self._commit_at_peer(peer, message.payload)
            elif message.topic == TOPIC_GOSSIP:
                tx_id, writes = message.payload
                peer.receive_private_data(tx_id, writes)
            elif message.topic == TOPIC_GOSSIP_BATCH:
                tx_id, batch = message.payload
                peer.receive_private_batch(tx_id, batch)
            elif message.topic in ANTI_ENTROPY_TOPICS:
                if self.anti_entropy is not None:
                    self.anti_entropy.on_message(peer, message)
            elif message.topic == TOPIC_SNAPSHOT_SIG:
                manifest, certificate, signature = message.payload
                peer.receive_snapshot_sig(manifest, certificate, signature)
            elif message.topic == TOPIC_ENDORSE:
                proposal = message.payload
                try:
                    result = self.network.process_endorsement(peer, proposal)
                except EndorsementError as exc:
                    result = exc
                self.bus.send(
                    peer.name, GATEWAY_ENDPOINT, TOPIC_ENDORSE_RESULT,
                    (proposal.tx_id, peer.name, result),
                )
            else:  # pragma: no cover - future topics
                raise ConfigError(f"peer {peer.name!r} got unknown topic {message.topic!r}")

        return handle

    def _commit_at_peer(self, peer: "PeerNode", block: Block) -> None:
        """Buffer the block and commit every in-order block now available.

        Fault models can drop or reorder ``deliver-block`` messages, so a
        peer may see block *n+1* before *n*.  Fabric's deliver client keeps
        a resume cursor; we model that with a per-peer out-of-order buffer —
        a block commits only when it is exactly the peer's next block, and a
        buffered successor commits right after the gap fills.
        """
        buffer = self._inbound.setdefault(peer.name, {})
        number = block.header.number
        if number < peer.ledger.blockchain.height or number in buffer:
            return  # duplicate delivery (e.g. catch-up raced a late message)
        buffer[number] = block
        self._drain_inbound(peer)

    def _drain_inbound(self, peer: "PeerNode") -> int:
        """Commit (or schedule) every in-order block; returns blocks taken.

        Without a cost model the commit happens inline, exactly as the
        event arrives — the byte-identical legacy path.  With one, each
        block instead passes through the peer's validation service
        station (:meth:`_drain_inbound_timed`).
        """
        if self.validate_cost is not None:
            return self._drain_inbound_timed(peer)
        buffer = self._inbound.setdefault(peer.name, {})
        taken = 0
        while peer.ledger.blockchain.height in buffer:
            block = buffer.pop(peer.ledger.blockchain.height)
            self._deliver[peer.name](block)
            self._note_committed(block)
            taken += 1
        return taken

    def _drain_inbound_timed(self, peer: "PeerNode") -> int:
        """Schedule ready blocks through the peer's validation station.

        The cost model turns validation from an instantaneous call into a
        FIFO service station: each block occupies the peer for its modeled
        service time — ``per_transaction``·txs plus ``per_signature``
        times the *makespan* of the executor's shard plan over the block's
        per-key signature groups — so simulated throughput reflects the
        configured parallelism.  Blocks are scheduled in height order;
        the actual validate+commit runs when the station frees up, with
        crash and stale-height guards (a crash or catch-up between
        scheduling and firing just drops the stale event).
        """
        buffer = self._inbound.setdefault(peer.name, {})
        name = peer.name
        height = max(
            self._scheduled_height.get(name, 0), peer.ledger.blockchain.height
        )
        taken = 0
        while height in buffer:
            block = buffer.pop(height)
            service = self.validate_cost.service_seconds(
                peer.validation_workload(block), len(block.transactions)
            )
            start = max(self.now, self._busy_until.get(name, 0.0))
            self._busy_until[name] = start + service
            height += 1
            self._scheduled_height[name] = height
            self.scheduler.call_later(
                self._busy_until[name] - self.now,
                lambda p=peer, b=block: self._finish_timed_commit(p, b),
            )
            taken += 1
        return taken

    def _finish_timed_commit(self, peer: "PeerNode", block: Block) -> None:
        if peer.name in self._crashed:
            self.crash_drops += 1  # the station died with the process
            return
        if block.header.number != peer.ledger.blockchain.height:
            return  # already committed by a catch-up/restart refill
        self._deliver[peer.name](block)
        self._note_committed(block)

    def _note_committed(self, block: Block) -> None:
        if self.anti_entropy is not None:
            # A commit may have recorded fresh gaps; make sure a tick is
            # pending to discover them (no-op while one already is).
            self.anti_entropy.arm()
        progress = self._blocks.get(block.header.number)
        if progress is None:  # pragma: no cover - defensive
            return
        progress.committed += 1
        if progress.committed < progress.expected:
            return
        del self._blocks[block.header.number]
        for tx in block.transactions:
            pending = self._pending.pop(tx.tx_id, None)
            if pending is not None:
                status = self.network.status_of(tx.tx_id)
                pending._resolve(status, at=self.now)
                self.transactions_resolved += 1
        for tx_id in self._aborts_by_block.pop(block.header.number, []):
            self._resolve_early_abort(tx_id)

    def _on_early_abort(
        self, envelope: TransactionEnvelope, reason: str, conflict_block: Optional[int]
    ) -> None:
        """An ordering-time abort from the conflict-aware pipeline.

        If the write that dooms the transaction lives in a block still
        being delivered, resolution waits for that block's full commit —
        the moment the equivalent post-commit MVCC abort would have become
        observable; otherwise the conflict is already committed state and
        the client learns immediately (the early part of early abort).
        """
        tx_id = envelope.tx_id
        if tx_id not in self._pending:
            return
        if conflict_block is not None and conflict_block in self._blocks:
            self._aborts_by_block.setdefault(conflict_block, []).append(tx_id)
        else:
            self._resolve_early_abort(tx_id)

    def _resolve_early_abort(self, tx_id: str) -> None:
        pending = self._pending.pop(tx_id, None)
        if pending is not None:
            pending._resolve(ValidationCode.ORDERER_EARLY_ABORT, at=self.now)
            self.transactions_resolved += 1

    # -- crash / recovery -----------------------------------------------------
    def on_crash(self, listener: Callable[["PeerNode"], None]) -> None:
        self._crash_listeners.append(listener)

    def on_restart(self, listener: Callable[["PeerNode"], None]) -> None:
        """Listeners fire after recovery but *before* the peer catches up —
        they observe exactly the state the storage engine recovered."""
        self._restart_listeners.append(listener)

    def crash_peer(self, name: str) -> None:
        """Kill a peer process: in-flight messages to it drop on arrival,
        its storage handles close abruptly, and it stops endorsing."""
        peer = self._peers.get(name)
        if peer is None:
            raise ConfigError(f"no peer {name!r} registered with the runtime")
        if name in self._crashed:
            return  # overlapping fault windows: already down
        tracer = self.network.tracer
        if tracer:
            tracer.record(name, "peer-crash", height=peer.ledger.height)
        # Listeners snapshot the peer's committed state before the process
        # dies (the durability check compares recovery against it).
        for listener in self._crash_listeners:
            listener(peer)
        self._crashed.add(name)
        self._inbound.pop(name, None)  # buffered blocks die with the process
        self._busy_until.pop(name, None)
        self._scheduled_height.pop(name, None)
        peer.crash()

    def restart_peer(self, name: str) -> None:
        """Recover a crashed peer from its durable state and rejoin.

        Restart listeners run at the exact recovery height (the durability
        invariant compares recovered state against the reference model
        there); only then does the peer refill its deliver cursor from the
        orderer backlog and commit what it missed.
        """
        peer = self._peers.get(name)
        if peer is None:
            raise ConfigError(f"no peer {name!r} registered with the runtime")
        if name not in self._crashed:
            return  # overlapping fault windows: never went down
        peer.restart()
        self._crashed.discard(name)
        tracer = self.network.tracer
        if tracer:
            tracer.record(name, "peer-restart", height=peer.ledger.height)
        for listener in self._restart_listeners:
            listener(peer)
        # Rejoin: pull everything past the recovered height, as the deliver
        # client does when it reconnects.  The backlog is pruned only to
        # the minimum sealed height across peers, so a recovered height
        # below the offset means the peer's durable state predates every
        # retained block — rebuild it from a snapshot, then replay the tail.
        buffer = self._inbound.setdefault(name, {})
        height = peer.ledger.blockchain.height
        try:
            backlog = self.network.orderer.blocks_since(height)
        except PrunedBacklogError:
            package = self.network.gossip.fetch_snapshot(
                peer, min_height=self.network.orderer.backlog_offset
            )
            if package is None:
                raise
            peer.ledger.reset_stores()
            bootstrap_from_package(peer.ledger, package, peer.channel)
            height = peer.ledger.blockchain.height
            if tracer:
                tracer.record(name, "peer-snapshot-bootstrap", height=height)
            backlog = self.network.orderer.blocks_since(height)
        for block in backlog:
            if block.header.number >= height:
                buffer.setdefault(block.header.number, block)
        self._drain_inbound(peer)

    def crashed_peers(self) -> set[str]:
        return set(self._crashed)

    def catch_up(self) -> int:
        """Re-deliver blocks that faults dropped; returns blocks committed.

        Models the deliver client reconnecting after a partition heals: each
        peer asks the orderer for everything past its current height, fills
        the out-of-order buffer, and commits the backlog in order.  Futures
        for the caught-up blocks resolve through the normal bookkeeping.
        Call after :meth:`run` when a fault schedule may have cut
        ``orderer → peer`` links.
        """
        committed = 0
        for name, peer in self._peers.items():
            if name in self._crashed:
                continue  # a down peer cannot reconnect; restart it first
            buffer = self._inbound.setdefault(name, {})
            before = max(
                peer.ledger.blockchain.height, self._scheduled_height.get(name, 0)
            )
            for block in self.network.orderer.blocks_since(before):
                number = block.header.number
                if number >= before and number not in buffer:
                    buffer[number] = block
            # With a cost model the drain *schedules* commits rather than
            # performing them, so count what the drain took, not a height
            # delta (the height moves when the scheduled events fire).
            committed += self._drain_inbound(peer)
        return committed

    # -- the gossip plane ----------------------------------------------------
    def _send_gossip(
        self,
        source: "PeerNode",
        target: "PeerNode",
        tx_id: str,
        writes: PrivateCollectionWrites,
    ) -> None:
        self.bus.send(source.name, target.name, TOPIC_GOSSIP, (tx_id, writes))

    def _send_gossip_batch(
        self,
        source: "PeerNode",
        target: "PeerNode",
        tx_id: str,
        batch: tuple[PrivateCollectionWrites, ...],
    ) -> None:
        self.bus.send(source.name, target.name, TOPIC_GOSSIP_BATCH, (tx_id, batch))

    def _send_snapshot_sig(
        self, source: "PeerNode", target: "PeerNode", manifest, certificate, signature
    ) -> None:
        self.bus.send(
            source.name, target.name, TOPIC_SNAPSHOT_SIG,
            (manifest, certificate, signature),
        )

    # -- snapshot checkpointing ----------------------------------------------
    def _on_peer_sealed(self, peer: "PeerNode", record) -> None:
        self._sealed_heights[peer.name] = max(
            self._sealed_heights.get(peer.name, 0), record.manifest.height
        )
        self._maybe_prune_backlog()

    def _maybe_prune_backlog(self) -> None:
        """Archive orderer backlog below the fleet-wide sealed floor.

        Conservative by construction: the floor is the minimum sealed
        snapshot height over *all* registered peers (a peer with no seal
        counts as 0), so every live or restartable consumer keeps a valid
        cursor.  Only peers created *after* pruning — fresh joiners — ever
        need the snapshot-bootstrap path.
        """
        if not self.network.prune_enabled or not self._peers:
            return
        floor = min(self._sealed_heights.get(name, 0) for name in self._peers)
        self.network.orderer.prune_delivered(floor)

    # -- driving the loop ----------------------------------------------------
    def run(self, max_events: int = DEFAULT_MAX_EVENTS) -> int:
        """Drain every scheduled event (delivers all resolvable futures)."""
        return self.scheduler.run(max_events=max_events)

    def run_for(self, duration: float, max_events: int = DEFAULT_MAX_EVENTS) -> int:
        return self.scheduler.run_for(duration, max_events=max_events)

    def run_until_committed(
        self, pending: PendingTransaction, max_events: int = DEFAULT_MAX_EVENTS
    ) -> SubmitResult:
        """Run the loop until ``pending`` resolves; error if it cannot."""
        if not self.scheduler.run_until(lambda: pending.done, max_events=max_events):
            raise SchedulerError(
                f"transaction {pending.tx_id} cannot commit: the event queue "
                "drained first (a fault model may have dropped its messages)"
            )
        return pending.result()

    def run_until_idle(self, max_events: int = DEFAULT_MAX_EVENTS) -> int:
        """Alias of :meth:`run` — the queue holds no perpetual timers."""
        return self.run(max_events=max_events)
