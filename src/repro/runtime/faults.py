"""Pluggable latency and fault models for the message bus.

These are the knobs that turn the deterministic runtime into an
adversarial one: per-link/per-topic latency with seeded jitter makes
gossip-vs-delivery races observable, and the fault injector drops or
delays exactly the messages an attacker (or an unreliable WAN) would.
All randomness is drawn from the scheduler's seeded RNG, so a faulty run
is as reproducible as a clean one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class LatencyModel:
    """Samples a delivery delay for each message.

    ``base`` is the default one-hop latency; ``jitter`` (if non-zero)
    spreads each sample uniformly over ``[base - jitter, base + jitter]``
    using the *scheduler's* RNG, keeping runs seed-reproducible.

    Resolution precedence is **link over topic over base**: a
    ``link_base`` entry for the exact ``(src, dst)`` pair wins outright
    (even when a ``topic_base`` entry also matches), a ``topic_base``
    entry wins over ``base``, and jitter is applied *after* resolution —
    so e.g. ``gossip-push`` can be made slower than ``deliver-block``
    globally while one specific link stays fast.  Samples are clamped at
    ``0.0``; jitter can never produce a negative delay.
    """

    base: float = 1.0
    jitter: float = 0.0
    link_base: dict = field(default_factory=dict)  # (src, dst) -> latency
    topic_base: dict = field(default_factory=dict)  # topic -> latency

    def sample(self, rng: random.Random, src: str, dst: str, topic: str) -> float:
        base = self.link_base.get((src, dst))
        if base is None:
            base = self.topic_base.get(topic, self.base)
        if self.jitter:
            base += rng.uniform(-self.jitter, self.jitter)
        return max(0.0, base)


@dataclass
class FaultInjector:
    """Message-level fault injection: drops, dead links, dead topics.

    * ``drop_rate`` — iid drop probability per message (seeded RNG);
    * ``topic_drop_rates`` — per-topic iid drop probability; the
      effective rate for a message is ``max(drop_rate, topic rate)``;
    * :meth:`cut_link` / :meth:`restore_link` — take one directed link
      down entirely (a partition is a set of cut links);
    * :meth:`drop_topic` / :meth:`allow_topic` — suppress one message
      class, e.g. every ``gossip-push``, leaving delivery intact.

    Counters record what was injected so tests can assert the fault
    actually fired rather than silently not triggering; ``dropped_by_topic``
    breaks the total down per message class, which lets an invariant
    checker account for every unresolved transaction (a submit that never
    commits must be explained by a ``submit``-topic drop).
    """

    drop_rate: float = 0.0
    topic_drop_rates: dict = field(default_factory=dict)  # topic -> rate
    dropped: int = 0
    dropped_by_topic: dict = field(default_factory=dict)  # topic -> count
    _dead_links: set = field(default_factory=set)
    _dead_topics: set = field(default_factory=set)

    # -- configuration ------------------------------------------------------
    def cut_link(self, src: str, dst: str) -> None:
        self._dead_links.add((src, dst))

    def restore_link(self, src: str, dst: str) -> None:
        self._dead_links.discard((src, dst))

    def drop_topic(self, topic: str) -> None:
        self._dead_topics.add(topic)

    def allow_topic(self, topic: str) -> None:
        self._dead_topics.discard(topic)

    def drop_topics(self, topics) -> None:
        """Suppress a whole family of message classes at once — e.g.
        every gossip topic, whichever dissemination mode is active."""
        self._dead_topics.update(topics)

    def allow_topics(self, topics) -> None:
        for topic in topics:
            self._dead_topics.discard(topic)

    def heal(self) -> None:
        """Restore every link and topic (random drops keep applying)."""
        self._dead_links.clear()
        self._dead_topics.clear()

    # -- the per-message decision -------------------------------------------
    def should_drop(self, rng: random.Random, src: str, dst: str, topic: str) -> bool:
        if (src, dst) in self._dead_links or topic in self._dead_topics:
            return self._record_drop(topic)
        rate = max(self.drop_rate, self.topic_drop_rates.get(topic, 0.0))
        if rate > 0.0 and rng.random() < rate:
            return self._record_drop(topic)
        return False

    def _record_drop(self, topic: str) -> bool:
        self.dropped += 1
        self.dropped_by_topic[topic] = self.dropped_by_topic.get(topic, 0) + 1
        return True


def no_latency() -> LatencyModel:
    """Zero-latency model: every message delivers at the current instant
    (still in deterministic scheduling order)."""
    return LatencyModel(base=0.0)


def wan_latency(seed_jitter: float = 0.5) -> LatencyModel:
    """A WAN-ish profile: slow inter-node hops with jitter, gossip slower
    than block delivery so dissemination races become visible."""
    return LatencyModel(
        base=5.0,
        jitter=seed_jitter,
        topic_base={"gossip-push": 8.0, "deliver-block": 5.0, "submit": 3.0},
    )


def lossy_faults(drop_rate: float = 0.05) -> FaultInjector:
    """A lossy network: each message independently dropped with ``drop_rate``."""
    return FaultInjector(drop_rate=drop_rate)
