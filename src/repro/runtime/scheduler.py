"""A deterministic, seedable discrete-event scheduler.

The scheduler is the heart of the event-driven transaction runtime: every
network hop, batch timeout, and fault-injection window is an event on one
priority queue, ordered by ``(time, priority, sequence)``.  The sequence
number breaks ties first-scheduled-first-run, so execution order is a
pure function of the schedule — no dict ordering, no wall clock, no
global randomness.

Randomness (latency jitter, drop decisions) comes exclusively from the
scheduler's own :class:`random.Random` instance seeded at construction:
two schedulers built with the same seed and fed the same calls replay
byte-identical histories, which is what lets a test assert that a
100-transaction pile-up produces *exactly* the same blocks twice.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Optional

from repro.common.errors import SchedulerError
from repro.runtime.clock import SimulatedClock

#: Default ceiling on events processed by ``run``/``run_until`` — high
#: enough for thousands of in-flight transactions, low enough to turn an
#: accidental event storm into a crisp error instead of a hang.
DEFAULT_MAX_EVENTS = 1_000_000


class ScheduledEvent:
    """A handle to one scheduled callback; supports cancellation."""

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; the scheduler skips it when popped."""
        self.cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"ScheduledEvent(t={self.time:.3f}, seq={self.seq}{state})"


class EventScheduler:
    """A seedable simulated-time event loop."""

    def __init__(self, seed: int = 0, clock: Optional[SimulatedClock] = None) -> None:
        self.clock = clock or SimulatedClock()
        self.random = random.Random(seed)
        self.seed = seed
        self.events_processed = 0
        self._queue: list[ScheduledEvent] = []
        self._seq = 0

    # -- introspection ------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    # -- scheduling ---------------------------------------------------------
    def call_at(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.clock.now:
            raise SchedulerError(
                f"cannot schedule into the past (now={self.clock.now:.3f}, requested={time:.3f})"
            )
        event = ScheduledEvent(time=time, priority=priority, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def call_later(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay!r}")
        return self.call_at(self.clock.now + delay, callback, priority=priority)

    # -- execution ----------------------------------------------------------
    def step(self) -> bool:
        """Pop and run the next live event; False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, max_events: int = DEFAULT_MAX_EVENTS) -> int:
        """Run until the queue drains; returns events processed this call."""
        processed = 0
        while self.step():
            processed += 1
            if processed >= max_events:
                raise SchedulerError(
                    f"event budget exhausted after {processed} events — "
                    "likely a self-rescheduling event loop"
                )
        return processed

    def run_until(
        self, predicate: Callable[[], bool], max_events: int = DEFAULT_MAX_EVENTS
    ) -> bool:
        """Run until ``predicate()`` holds; False if the queue drained first."""
        processed = 0
        while not predicate():
            if not self.step():
                return False
            processed += 1
            if processed >= max_events:
                raise SchedulerError(
                    f"condition not reached within {max_events} events"
                )
        return True

    def run_for(self, duration: float, max_events: int = DEFAULT_MAX_EVENTS) -> int:
        """Run events scheduled in the next ``duration`` time units.

        The clock ends up at ``start + duration`` even if the queue drains
        early, mirroring "sleep for N" in a real system.
        """
        deadline = self.clock.now + duration
        processed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                break
            self.step()
            processed += 1
            if processed >= max_events:
                raise SchedulerError(
                    f"event budget exhausted after {processed} events"
                )
        self.clock.advance_to(deadline)
        return processed
