"""The simulated clock: logical time for the event-driven runtime.

Time in the runtime is *simulated*, not wall-clock: it advances only when
the scheduler pops an event, jumping straight to that event's timestamp.
A run that models minutes of network traffic therefore executes in
milliseconds, and — crucially for reproducibility — two runs with the
same seed observe exactly the same timestamps.

Units are abstract "time units"; the latency models in
:mod:`repro.runtime.faults` decide what one unit means (the defaults
treat one unit as roughly one network hop).
"""

from __future__ import annotations


class SimulatedClock:
    """Monotonic simulated time, advanced only by the scheduler."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Jump forward to ``timestamp`` (never backwards)."""
        if timestamp > self._now:
            self._now = timestamp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedClock(now={self._now:.3f})"
