"""The message bus: named endpoints, per-link queues, scheduled delivery.

Every component of the event-driven pipeline (the orderer, each peer)
registers an :class:`Endpoint` — an inbox plus a handler.  Senders call
:meth:`MessageBus.send`; the bus consults the latency model and fault
injector, then schedules the delivery as an event.  Delivery appends the
message to the destination inbox and drains it, so a handler observes
messages one at a time in arrival order.

Two ordering guarantees matter for fidelity:

* **per-link FIFO** (default on): messages on the same ``(src, dst)``
  link never overtake each other, even under jitter — matching TCP
  streams between Fabric nodes.  Messages on *different* links race
  freely, which is exactly the race the gossip experiments observe.
* **global determinism**: same seed, same sends → same delivery order,
  because delivery times come from the seeded RNG and ties break by
  send sequence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.common.errors import ConfigError
from repro.runtime.faults import FaultInjector, LatencyModel
from repro.runtime.scheduler import EventScheduler


@dataclass(frozen=True)
class Message:
    """One message in flight on the bus."""

    src: str
    dst: str
    topic: str
    payload: Any
    seq: int  # bus-wide send sequence number
    sent_at: float
    deliver_at: float


MessageHandler = Callable[[Message], None]


class Endpoint:
    """A named inbox with a handler, owned by one component."""

    def __init__(self, name: str, handler: MessageHandler) -> None:
        self.name = name
        self.handler = handler
        self.inbox: deque = deque()
        self.delivered = 0
        self._draining = False

    def enqueue(self, message: Message) -> None:
        self.inbox.append(message)
        self.drain()

    def drain(self) -> None:
        # A handler may itself trigger sends that deliver at the same
        # instant; re-entrant drains would reorder the inbox.
        if self._draining:
            return
        self._draining = True
        try:
            while self.inbox:
                message = self.inbox.popleft()
                self.delivered += 1
                self.handler(message)
        finally:
            self._draining = False


class MessageBus:
    """Scheduled message delivery between named endpoints."""

    def __init__(
        self,
        scheduler: EventScheduler,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultInjector] = None,
        fifo_links: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.latency = latency or LatencyModel()
        self.faults = faults
        self.fifo_links = fifo_links
        self.messages_sent = 0
        self.messages_dropped = 0
        self.topic_counts: dict[str, int] = {}
        self._endpoints: dict[str, Endpoint] = {}
        self._link_clock: dict[tuple[str, str], float] = {}
        self._seq = 0

    # -- topology ------------------------------------------------------------
    def register(self, name: str, handler: MessageHandler) -> Endpoint:
        if name in self._endpoints:
            raise ConfigError(f"bus endpoint {name!r} already registered")
        endpoint = Endpoint(name, handler)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise ConfigError(f"no bus endpoint named {name!r}") from None

    def endpoints(self) -> list[str]:
        return list(self._endpoints)

    # -- sending -------------------------------------------------------------
    def send(self, src: str, dst: str, topic: str, payload: Any) -> Optional[Message]:
        """Schedule one message; returns None if a fault dropped it.

        ``src`` is free-form (clients need no endpoint); ``dst`` must be
        a registered endpoint.
        """
        endpoint = self.endpoint(dst)
        now = self.scheduler.now
        if self.faults is not None and self.faults.should_drop(
            self.scheduler.random, src, dst, topic
        ):
            self.messages_dropped += 1
            return None
        delay = self.latency.sample(self.scheduler.random, src, dst, topic)
        deliver_at = now + delay
        if self.fifo_links:
            link = (src, dst)
            deliver_at = max(deliver_at, self._link_clock.get(link, 0.0))
            self._link_clock[link] = deliver_at
        message = Message(
            src=src,
            dst=dst,
            topic=topic,
            payload=payload,
            seq=self._seq,
            sent_at=now,
            deliver_at=deliver_at,
        )
        self._seq += 1
        self.messages_sent += 1
        self.topic_counts[topic] = self.topic_counts.get(topic, 0) + 1
        self.scheduler.call_at(deliver_at, lambda: endpoint.enqueue(message))
        return message
