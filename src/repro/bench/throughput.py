"""Pipelined throughput measurement: committed tx/sec under the runtime.

The seed simulator committed one transaction per block because nothing
was ever in flight; with the event runtime the orderer genuinely batches,
so this bench answers the scaling question the synchronous path could
not: how does end-to-end throughput move with the block *batch size* and
with the client's *in-flight depth* (how many submissions are enqueued
before the event loop drains)?

Each cell builds a fresh three-org network, attaches a seeded runtime,
pumps ``transactions`` private writes through ``submit_async`` with at
most ``depth`` in flight, and reports wall-clock committed tx/sec plus
the block count (which shows the cutter actually batching: blocks ≈
transactions / batch_size, not one block per transaction).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chaincode.contracts import PrivateAssetContract
from repro.network.presets import TestNetwork, three_org_network

#: (batch_size, depth) cells swept by default: the batch-size sweep at a
#: fixed depth, then the depth sweep at a fixed batch size.
DEFAULT_CELLS = ((1, 50), (10, 50), (25, 50), (25, 1), (25, 10))
DEFAULT_TRANSACTIONS = 50


@dataclass
class ThroughputCell:
    """One (batch_size, depth) measurement."""

    batch_size: int
    depth: int
    transactions: int
    committed: int
    blocks: int
    wall_seconds: float
    sim_time: float

    @property
    def tx_per_sec(self) -> float:
        return self.committed / self.wall_seconds if self.wall_seconds > 0 else 0.0


def _build_network(batch_size: int) -> TestNetwork:
    net = three_org_network(batch_size=batch_size)
    net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
    return net


def measure_throughput(
    batch_size: int,
    depth: int,
    transactions: int = DEFAULT_TRANSACTIONS,
    seed: int = 0,
) -> ThroughputCell:
    """Measure one cell: ``transactions`` writes, ≤ ``depth`` in flight."""
    if depth < 1:
        raise ValueError("in-flight depth must be at least 1")
    net = _build_network(batch_size)
    runtime = net.network.attach_runtime(seed=seed)
    client = net.client_of(1)
    endorsers = [net.peer_of(1), net.peer_of(2)]

    pendings = []
    start = time.perf_counter()
    for i in range(transactions):
        pendings.append(
            client.submit_async(
                net.chaincode_id,
                "set_private",
                [net.collection, f"bench-{i:05d}"],
                transient={"value": b"v"},
                endorsing_peers=endorsers,
            )
        )
        if runtime.in_flight() >= depth:
            runtime.run()
    runtime.run()
    wall = time.perf_counter() - start

    committed = sum(1 for p in pendings if p.done and p.result().committed)
    return ThroughputCell(
        batch_size=batch_size,
        depth=depth,
        transactions=transactions,
        committed=committed,
        blocks=net.network.orderer.blocks_delivered,
        wall_seconds=wall,
        sim_time=runtime.now,
    )


def measure_throughput_matrix(
    cells: Sequence[tuple[int, int]] = DEFAULT_CELLS,
    transactions: int = DEFAULT_TRANSACTIONS,
    seed: int = 0,
) -> list[ThroughputCell]:
    """Sweep the (batch_size, depth) cells; one fresh network per cell."""
    return [
        measure_throughput(batch_size, depth, transactions=transactions, seed=seed)
        for batch_size, depth in cells
    ]


def render_throughput(results: Sequence[ThroughputCell], title: Optional[str] = None) -> str:
    lines = [
        title
        or "Pipelined throughput — committed tx/sec vs batch size and in-flight depth",
        f"{'batch':>6} {'depth':>6} {'txs':>6} {'committed':>10} "
        f"{'blocks':>7} {'wall s':>8} {'tx/sec':>9}",
    ]
    for cell in results:
        lines.append(
            f"{cell.batch_size:>6} {cell.depth:>6} {cell.transactions:>6} "
            f"{cell.committed:>10} {cell.blocks:>7} "
            f"{cell.wall_seconds:>8.3f} {cell.tx_per_sec:>9.1f}"
        )
    return "\n".join(lines)
