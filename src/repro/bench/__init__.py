"""Measurement harnesses behind the benchmark suite."""

from repro.bench.latency import (
    DEFAULT_RUNS,
    TX_TYPES,
    LatencyStats,
    TxLatency,
    measure_fig11,
    measure_tx_latency,
    overhead_pct,
    render_fig11,
)

__all__ = [
    "DEFAULT_RUNS",
    "TX_TYPES",
    "LatencyStats",
    "TxLatency",
    "measure_fig11",
    "measure_tx_latency",
    "overhead_pct",
    "render_fig11",
]
