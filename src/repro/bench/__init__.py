"""Measurement harnesses behind the benchmark suite."""

from repro.bench.latency import (
    DEFAULT_RUNS,
    TX_TYPES,
    LatencyStats,
    TxLatency,
    measure_fig11,
    measure_tx_latency,
    overhead_pct,
    render_fig11,
)
from repro.bench.throughput import (
    DEFAULT_CELLS,
    DEFAULT_TRANSACTIONS,
    ThroughputCell,
    measure_throughput,
    measure_throughput_matrix,
    render_throughput,
)

__all__ = [
    "DEFAULT_CELLS",
    "DEFAULT_RUNS",
    "DEFAULT_TRANSACTIONS",
    "LatencyStats",
    "TX_TYPES",
    "ThroughputCell",
    "TxLatency",
    "measure_fig11",
    "measure_throughput",
    "measure_throughput_matrix",
    "measure_tx_latency",
    "overhead_pct",
    "render_fig11",
    "render_throughput",
]
