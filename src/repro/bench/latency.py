"""Defense overhead measurement (Fig. 11).

Measures, per transaction, the two latencies the paper reports:

* **execution latency** — steps 1-5 of Fig. 2: proposal creation,
  chaincode simulation at each endorser, endorsement signing, and the
  client-side response checks (where New Feature 2 adds one SHA-256 and
  one extra comparison per endorser);
* **validation latency** — steps 13-18 at one committing peer: signature
  verification, endorsement-policy evaluation (where New Feature 1 adds
  the collection-level check for reads), MVCC, and commit.

Each configuration is measured over N runs (the paper uses 100) for the
three transaction types read / write / delete.  Absolute numbers are
simulator-scale, not Docker-network-scale; the claim under test is the
*relative* one — that the modified framework adds only minor overhead.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.chaincode.contracts import ConstrainedPrivateAssetContract
from repro.core.defense.features import FrameworkFeatures
from repro.network.presets import TestNetwork, three_org_network

COLLECTION_POLICY = "AND('Org1MSP.peer', 'Org2MSP.peer')"
TX_TYPES = ("read", "write", "delete")
DEFAULT_RUNS = 100


@dataclass
class LatencyStats:
    """Summary statistics over per-run latencies (milliseconds)."""

    samples_ms: list = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.samples_ms.append(seconds * 1000.0)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples_ms) if self.samples_ms else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.samples_ms) if self.samples_ms else 0.0

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.samples_ms) if len(self.samples_ms) > 1 else 0.0

    @property
    def p95(self) -> float:
        if not self.samples_ms:
            return 0.0
        ordered = sorted(self.samples_ms)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


@dataclass
class TxLatency:
    """Execution + validation latency for one (framework, tx-type) cell."""

    framework: str
    tx_type: str
    execution: LatencyStats = field(default_factory=LatencyStats)
    validation: LatencyStats = field(default_factory=LatencyStats)


def _build_network(features: FrameworkFeatures) -> TestNetwork:
    net = three_org_network(collection_policy=COLLECTION_POLICY, features=features)
    net.network.install_chaincode(net.chaincode_id, ConstrainedPrivateAssetContract())
    return net


class _ValidationTimer:
    """Times one peer's block deliveries, but only while armed.

    Setup traffic (seeding keys for delete runs) must not pollute the
    validation statistics, so the timer records samples only between
    :meth:`arm` and :meth:`disarm`.
    """

    def __init__(self, net: TestNetwork, stats: LatencyStats) -> None:
        self._stats = stats
        self._armed = False
        victim = net.peer_of(2)
        original = victim.deliver_block

        def timed(block):
            start = time.perf_counter()
            result = original(block)
            if self._armed:
                self._stats.add(time.perf_counter() - start)
            return result

        victim.deliver_block = timed  # type: ignore[method-assign]
        # Delivery handlers captured the bound method at add_peer time;
        # swap in the timed wrapper.
        handlers = net.network.orderer._delivery_handlers
        for i, handler in enumerate(handlers):
            if getattr(handler, "__self__", None) is victim:
                handlers[i] = timed

    def arm(self) -> None:
        self._armed = True

    def disarm(self) -> None:
        self._armed = False


def measure_tx_latency(
    features: FrameworkFeatures,
    tx_type: str,
    runs: int = DEFAULT_RUNS,
    framework_label: Optional[str] = None,
) -> TxLatency:
    """Measure one Fig. 11 cell."""
    if tx_type not in TX_TYPES:
        raise ValueError(f"tx_type must be one of {TX_TYPES}")
    net = _build_network(features)
    result = TxLatency(
        framework=framework_label or features.describe(), tx_type=tx_type
    )
    timer = _ValidationTimer(net, result.validation)
    client = net.client_of(1)
    endorsers = [net.peer_of(1), net.peer_of(2)]

    def seed(key: str) -> None:
        client.submit_transaction(
            net.chaincode_id, "set_private", [net.collection, key],
            transient={"value": b"12"}, endorsing_peers=endorsers,
        ).raise_for_status()

    # A read target that exists for every run.
    if tx_type == "read":
        seed("bench-key")

    for run in range(runs):
        if tx_type == "read":
            function, args, transient = "get_private", [net.collection, "bench-key"], None
        elif tx_type == "write":
            function, args, transient = (
                "set_private", [net.collection, f"bench-{run}"], {"value": b"12"},
            )
        else:  # delete
            seed(f"bench-{run}")
            function, args, transient = "del_private", [net.collection, f"bench-{run}"], None

        start = time.perf_counter()
        proposal = client._proposal(net.chaincode_id, function, args, transient)
        responses = [
            net.network.request_endorsement(peer, proposal).response for peer in endorsers
        ]
        client._check_consistency(proposal, responses)
        envelope = client.assemble(proposal, responses)
        result.execution.add(time.perf_counter() - start)

        timer.arm()
        try:
            net.network.submit_envelope(envelope).raise_for_status()
        finally:
            timer.disarm()
    return result


def measure_fig11(
    runs: int = DEFAULT_RUNS,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """All six Fig. 11 cells: {original, modified} x {read, write, delete}."""
    frameworks = [
        ("original", FrameworkFeatures.original()),
        ("modified", FrameworkFeatures.defended()),
    ]
    results = {}
    for label, features in frameworks:
        for tx_type in TX_TYPES:
            if progress:
                progress(f"{label} framework, {tx_type} transactions")
            results[(label, tx_type)] = measure_tx_latency(
                features, tx_type, runs=runs, framework_label=label
            )
    return results


def overhead_pct(results: dict, tx_type: str, phase: str) -> float:
    """Relative overhead of the modified framework for one phase.

    Computed over the *median* latency: single-run outliers (GC pauses,
    scheduler noise) would otherwise dominate the comparison, which is
    about the systematic per-transaction cost of the defenses.
    """
    original = getattr(results[("original", tx_type)], phase).median
    modified = getattr(results[("modified", tx_type)], phase).median
    if original == 0:
        return 0.0
    return 100.0 * (modified - original) / original


def render_fig11(results: dict) -> str:
    lines = [
        "Fig. 11 — Impact of defense measures on per-transaction latency "
        "(ms, median [p95]; overhead on medians)",
        f"{'tx type':<8} {'phase':<11} {'original':>18} {'modified':>18} {'overhead':>10}",
    ]
    for tx_type in TX_TYPES:
        for phase in ("execution", "validation"):
            original = getattr(results[("original", tx_type)], phase)
            modified = getattr(results[("modified", tx_type)], phase)
            lines.append(
                f"{tx_type:<8} {phase:<11} "
                f"{original.median:>8.3f} [{original.p95:>6.3f}]  "
                f"{modified.median:>8.3f} [{modified.p95:>6.3f}]  "
                f"{overhead_pct(results, tx_type, phase):>8.1f}%"
            )
    return "\n".join(lines)
