"""Malicious customized chaincode: the endorsement forgery of §IV-A1.

Fabric only requires that *execution results agree across endorsers* — the
chaincode binaries themselves may differ per peer ("customizable
chaincode").  Colluding peers exploit this: they install a contract that

1. obtains the genuine ``(hash(key), version)`` read-set entry through
   ``get_private_data_hash`` — an API every peer may call — and
2. returns an agreed-upon **fake value** through the ``payload`` field.

The resulting proposal-response is byte-identical across the colluders and
carries a read set whose version matches the world state, so it passes
both checks of the proof-of-policy consensus at validation time.
"""

from __future__ import annotations

from repro.chaincode.api import Chaincode, require_args
from repro.chaincode.stub import ChaincodeStub
from repro.common.errors import ChaincodeError


class ForgedReadContract(Chaincode):
    """Forges ``get_private`` results (fake read injection, §IV-A1).

    All colluding endorsers install this contract configured with the same
    ``fake_value``; honest peers are never asked to endorse.
    """

    def __init__(self, fake_value: bytes) -> None:
        self._fake_value = fake_value

    def get_private(self, stub: ChaincodeStub, args: list) -> bytes:
        """Same signature as the honest contract's read function.

        Instead of ``get_private_data`` (which would fail at a non-member),
        it calls ``get_private_data_hash`` — producing the *same* hashed
        read-set entry — and returns the colluders' fake value.
        """
        require_args(args, 2, "a collection and a key")
        collection, key = args
        digest = stub.get_private_data_hash(collection, key)
        if digest is None:
            raise ChaincodeError(f"no private data hash for key {key!r}")
        return self._fake_value


class ForgedReadWriteContract(Chaincode):
    """Forges the read half of a read-modify-write (§IV-A3).

    The honest ``add_private`` reads the current value, adds ``delta`` and
    writes the sum.  The forged variant fabricates the read value (so the
    colluders control the sum — e.g. forcing it below a victim's lower
    bound) while still emitting a read-set entry with the genuine version.
    """

    def __init__(self, fake_current_value: int) -> None:
        self._fake_current = fake_current_value

    def add_private(self, stub: ChaincodeStub, args: list) -> bytes:
        require_args(args, 3, "a collection, a key and an integer delta")
        collection, key, delta_text = args
        digest = stub.get_private_data_hash(collection, key)
        if digest is None:
            raise ChaincodeError(f"no private data hash for key {key!r}")
        total = self._fake_current + int(delta_text)
        stub.put_private_data(collection, key, str(total).encode("utf-8"))
        return b""


class UnconstrainedWriteContract(Chaincode):
    """A write path with no business-logic checks at all (§IV-A2).

    Not malicious per se — it is the *absence* of validation the paper
    expects at PDC non-member peers "with no interest in such private
    data".  Exposes the same function names as the constrained contract so
    proposal responses line up.
    """

    def set_private(self, stub: ChaincodeStub, args: list) -> bytes:
        require_args(args, 2, "a collection and a key")
        collection, key = args
        value = stub.get_transient("value")
        if value is None:
            raise ChaincodeError("missing transient field 'value'")
        stub.put_private_data(collection, key, value)
        return b""

    def add_private(self, stub: ChaincodeStub, args: list) -> bytes:
        require_args(args, 3, "a collection, a key and an integer delta")
        collection, key, delta_text = args
        current = stub.get_private_data(collection, key)
        total = int(current.decode("utf-8")) + int(delta_text)
        stub.put_private_data(collection, key, str(total).encode("utf-8"))
        return b""

    def del_private(self, stub: ChaincodeStub, args: list) -> bytes:
        require_args(args, 2, "a collection and a key")
        collection, key = args
        stub.del_private_data(collection, key)
        return b""
