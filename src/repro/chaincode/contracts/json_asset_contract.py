"""A JSON-document asset contract exercising rich queries.

Models the common "marbles"-style Fabric sample: assets are JSON
documents queried by owner/color via CouchDB selectors.
"""

from __future__ import annotations

import json

from repro.chaincode.api import Chaincode, require_args
from repro.chaincode.stub import ChaincodeStub
from repro.common.errors import ChaincodeError


class JsonAssetContract(Chaincode):
    """CRUD + rich queries over JSON assets under ``json:<id>``."""

    @staticmethod
    def _key(asset_id: str) -> str:
        return f"json:{asset_id}"

    def create_json_asset(self, stub: ChaincodeStub, args: list) -> bytes:
        """``create_json_asset(id, owner, color, size)``."""
        require_args(args, 4, "an id, owner, color and integer size")
        asset_id, owner, color, size = args
        document = {
            "docType": "asset",
            "id": asset_id,
            "owner": owner,
            "color": color,
            "size": int(size),
        }
        stub.put_state(self._key(asset_id), json.dumps(document).encode("utf-8"))
        return b""

    def read_json_asset(self, stub: ChaincodeStub, args: list) -> bytes:
        require_args(args, 1, "an asset id")
        value = stub.get_state(self._key(args[0]))
        if value is None:
            raise ChaincodeError(f"asset {args[0]!r} does not exist")
        return value

    def query_by_owner(self, stub: ChaincodeStub, args: list) -> bytes:
        """``query_by_owner(owner)`` — a rich query (NOT phantom-safe)."""
        require_args(args, 1, "an owner name")
        results = stub.get_query_result({"docType": "asset", "owner": args[0]})
        ids = [json.loads(value)["id"] for _key, value in results]
        return ",".join(sorted(ids)).encode("utf-8")

    def query_selector(self, stub: ChaincodeStub, args: list) -> bytes:
        """``query_selector(json_selector)`` — raw selector passthrough."""
        require_args(args, 1, "a JSON selector")
        try:
            selector = json.loads(args[0])
        except json.JSONDecodeError as exc:
            raise ChaincodeError(f"malformed selector: {exc}") from exc
        results = stub.get_query_result(selector)
        ids = [json.loads(value)["id"] for _key, value in results]
        return ",".join(sorted(ids)).encode("utf-8")

    def transfer_json_asset(self, stub: ChaincodeStub, args: list) -> bytes:
        """``transfer_json_asset(id, new_owner)`` — read-modify-write."""
        require_args(args, 2, "an asset id and a new owner")
        asset_id, new_owner = args
        raw = stub.get_state(self._key(asset_id))
        if raw is None:
            raise ChaincodeError(f"asset {asset_id!r} does not exist")
        document = json.loads(raw)
        document["owner"] = new_owner
        stub.put_state(self._key(asset_id), json.dumps(document).encode("utf-8"))
        return b""
