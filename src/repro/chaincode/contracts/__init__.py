"""Bundled chaincode: honest, constrained, leaky and malicious contracts."""

from repro.chaincode.contracts.asset_contract import AssetContract
from repro.chaincode.contracts.constrained_pdc import (
    ConstrainedPrivateAssetContract,
    WriteConstraint,
    greater_than,
    less_than,
)
from repro.chaincode.contracts.json_asset_contract import JsonAssetContract
from repro.chaincode.contracts.leaky_contracts import PerfTestContract, SaccPrivateContract
from repro.chaincode.contracts.malicious import (
    ForgedReadContract,
    ForgedReadWriteContract,
    UnconstrainedWriteContract,
)
from repro.chaincode.contracts.pdc_contract import PrivateAssetContract

__all__ = [
    "AssetContract",
    "ConstrainedPrivateAssetContract",
    "WriteConstraint",
    "greater_than",
    "less_than",
    "JsonAssetContract",
    "PerfTestContract",
    "SaccPrivateContract",
    "ForgedReadContract",
    "ForgedReadWriteContract",
    "UnconstrainedWriteContract",
    "PrivateAssetContract",
]
