"""Python ports of the two vulnerable GitHub chaincodes of Section V-B.

Listing 1 (Node.js, fabricPerfTest): ``readPrivatePerfTest`` fetches a
private value with ``getPrivateData`` and returns it — so when the client
*submits* (rather than evaluates) the call, the plaintext lands in the
``payload`` field of a transaction distributed to every peer.

Listing 2 (Go, privatedatadeepdive): ``setPrivate`` writes a private value
taken from ``args[1]`` and then *returns args[1]* — leaking the value even
on the write path, and additionally exposing it in the proposal arguments.
"""

from __future__ import annotations

from repro.chaincode.api import Chaincode, require_args
from repro.chaincode.stub import ChaincodeStub
from repro.common.errors import ChaincodeError, KeyNotFoundError


class PerfTestContract(Chaincode):
    """Listing 1: the PDC-read leak."""

    def __init__(self, collection: str = "CollectionPerfTest") -> None:
        self._collection = collection

    def private_perf_test_exists(self, stub: ChaincodeStub, args: list) -> bytes:
        require_args(args, 1, "a perf test id")
        digest = stub.get_private_data_hash(self._collection, args[0])
        return b"true" if digest is not None else b"false"

    def read_private_perf_test(self, stub: ChaincodeStub, args: list) -> bytes:
        """Faithful port of Listing 1: existence check, read, *return value*."""
        require_args(args, 1, "a perf test id")
        perf_test_id = args[0]
        exists = stub.get_private_data_hash(self._collection, perf_test_id) is not None
        if not exists:
            raise ChaincodeError(f"The perf test {perf_test_id} does not exist")
        try:
            buffer = stub.get_private_data(self._collection, perf_test_id)
        except KeyNotFoundError as exc:
            raise ChaincodeError(str(exc)) from exc
        return buffer  # the leak: plaintext PDC value into the payload field

    def create_private_perf_test(self, stub: ChaincodeStub, args: list) -> bytes:
        require_args(args, 1, "a perf test id")
        value = stub.get_transient("asset")
        if value is None:
            raise ChaincodeError("missing transient field 'asset'")
        stub.put_private_data(self._collection, args[0], value)
        return b""


class SaccPrivateContract(Chaincode):
    """Listing 2: the PDC-write leak (collection name fixed to 'demo')."""

    COLLECTION = "demo"

    def set_private(self, stub: ChaincodeStub, args: list) -> bytes:
        """Faithful port of Listing 2, including the leaky return."""
        if len(args) != 2:
            raise ChaincodeError("Incorrect arguments. Expecting a key and a value")
        key, value = args
        stub.put_private_data(self.COLLECTION, key, value.encode("utf-8"))
        return value.encode("utf-8")  # the leak: echoes the PDC value back

    def get_private(self, stub: ChaincodeStub, args: list) -> bytes:
        if len(args) != 1:
            raise ChaincodeError("Incorrect arguments. Expecting a key")
        return stub.get_private_data(self.COLLECTION, args[0])
