"""Private-data chaincode: the honest and the sloppy way.

``PrivateAssetContract`` implements the PDC workloads of Sections III-V:

* ``set_private`` takes the value from the *transient* map — the correct
  pattern, keeping the value out of every signed/ordered message;
* ``get_private`` returns the value through the response ``payload`` —
  the audit-style PDC read of §IV-B1 that, submitted as a transaction,
  leaks the value to every peer in the channel;
* ``add_private`` is the read-modify-write function of §IV-A3;
* ``del_private`` exercises the delete-only path of §IV-A4.
"""

from __future__ import annotations

from repro.chaincode.api import Chaincode, require_args
from repro.chaincode.stub import ChaincodeStub
from repro.common.errors import ChaincodeError


class PrivateAssetContract(Chaincode):
    """CRUD over one private data collection."""

    def set_private(self, stub: ChaincodeStub, args: list) -> bytes:
        """``set_private(collection, key)`` with the value in transient['value'].

        Write-only: produces a null read set, so even PDC non-member peers
        endorse it without error (Use Case 1).
        """
        require_args(args, 2, "a collection and a key")
        collection, key = args
        value = stub.get_transient("value")
        if value is None:
            raise ChaincodeError("missing transient field 'value'")
        stub.put_private_data(collection, key, value)
        return b""

    def get_private(self, stub: ChaincodeStub, args: list) -> bytes:
        """``get_private(collection, key)`` — value returned via payload.

        Read-only.  Evaluated locally this is fine; *submitted* as a
        transaction (e.g. for auditing reads) the plaintext payload is
        recorded on every peer's blockchain — the §IV-B1 leakage.
        """
        require_args(args, 2, "a collection and a key")
        collection, key = args
        return stub.get_private_data(collection, key)

    def get_private_hash(self, stub: ChaincodeStub, args: list) -> bytes:
        """``get_private_hash(collection, key)`` — works at any peer."""
        require_args(args, 2, "a collection and a key")
        collection, key = args
        digest = stub.get_private_data_hash(collection, key)
        if digest is None:
            raise ChaincodeError(f"no private data hash for key {key!r}")
        return digest.hex().encode("ascii")

    def add_private(self, stub: ChaincodeStub, args: list) -> bytes:
        """``add_private(collection, key, delta)`` — read-modify-write."""
        require_args(args, 3, "a collection, a key and an integer delta")
        collection, key, delta_text = args
        current = stub.get_private_data(collection, key)
        try:
            total = int(current.decode("utf-8")) + int(delta_text)
        except ValueError as exc:
            raise ChaincodeError(f"private key {key!r} is not numeric: {exc}") from exc
        stub.put_private_data(collection, key, str(total).encode("utf-8"))
        return b""

    def move_private(self, stub: ChaincodeStub, args: list) -> bytes:
        """``move_private(src_collection, dst_collection, key)`` — transfer.

        Cross-collection move: read the plaintext from the source
        collection, delete it there, and rewrite it into the destination.
        Endorsers must be members of the *source* collection (the read
        needs plaintext), and validation consults the endorsement policies
        of both collections — the multi-collection path of §III-B.
        """
        require_args(args, 3, "a source collection, a destination collection and a key")
        src_collection, dst_collection, key = args
        if src_collection == dst_collection:
            raise ChaincodeError("source and destination collections must differ")
        value = stub.get_private_data(src_collection, key)
        stub.del_private_data(src_collection, key)
        stub.put_private_data(dst_collection, key, value)
        return b""

    def del_private(self, stub: ChaincodeStub, args: list) -> bytes:
        """``del_private(collection, key)`` — delete-only (null read set)."""
        require_args(args, 2, "a collection and a key")
        collection, key = args
        stub.del_private_data(collection, key)
        return b""

    def verify_private(self, stub: ChaincodeStub, args: list) -> bytes:
        """``verify_private(collection, key, claimed_value)`` — hash check.

        The privacy-preserving way to prove a value: any peer compares
        ``hash(claimed_value)`` against the stored hash, never exposing
        the original.
        """
        require_args(args, 3, "a collection, a key and a claimed value")
        from repro.common.hashing import hash_value

        collection, key, claimed = args
        stored = stub.get_private_data_hash(collection, key)
        if stored is None:
            return b"absent"
        matches = stored == hash_value(claimed.encode("utf-8"))
        return b"match" if matches else b"mismatch"
