"""Per-org customized PDC chaincode with business-logic constraints.

Section V-A of the paper runs its injection experiments against peers
whose chaincode enforces *different* write constraints:

* peer0.org1 requires ``k1.value < 15``,
* peer0.org2 (the victim) requires ``k1.value > 10``,
* peer0.org3 (PDC non-member) adds no constraint at all.

Fabric's customizable-chaincode feature makes this legal — only the
execution *results* must match across endorsers — and the attack exploits
the fact that a client can simply pick endorsers whose constraints accept
the malicious value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.chaincode.api import require_args
from repro.chaincode.contracts.pdc_contract import PrivateAssetContract
from repro.chaincode.stub import ChaincodeStub
from repro.common.errors import ChaincodeError

Constraint = Callable[[int], bool]


@dataclass(frozen=True)
class WriteConstraint:
    """A named predicate over the integer value being written/deleted."""

    description: str
    predicate: Constraint

    def check(self, value: int) -> None:
        if not self.predicate(value):
            raise ChaincodeError(
                f"business-logic constraint violated: value {value} fails {self.description!r}"
            )


def less_than(bound: int) -> WriteConstraint:
    return WriteConstraint(f"value < {bound}", lambda v: v < bound)


def greater_than(bound: int) -> WriteConstraint:
    return WriteConstraint(f"value > {bound}", lambda v: v > bound)


class ConstrainedPrivateAssetContract(PrivateAssetContract):
    """The PDC contract extended with an org-specific write constraint.

    ``constraint=None`` reproduces the non-member peers that "add no
    constraints" — the sloppy practice §IV-A2 calls out.
    """

    def __init__(self, constraint: Optional[WriteConstraint] = None) -> None:
        self._constraint = constraint

    def _check(self, raw_value: bytes) -> None:
        if self._constraint is None:
            return
        try:
            value = int(raw_value.decode("utf-8"))
        except ValueError as exc:
            raise ChaincodeError(f"constrained contract expects integer values: {exc}") from exc
        self._constraint.check(value)

    def set_private(self, stub: ChaincodeStub, args: list) -> bytes:
        require_args(args, 2, "a collection and a key")
        value = stub.get_transient("value")
        if value is None:
            raise ChaincodeError("missing transient field 'value'")
        self._check(value)
        return super().set_private(stub, args)

    def add_private(self, stub: ChaincodeStub, args: list) -> bytes:
        """Read-modify-write with the constraint applied to the *sum*."""
        require_args(args, 3, "a collection, a key and an integer delta")
        collection, key, delta_text = args
        current = stub.get_private_data(collection, key)
        total = int(current.decode("utf-8")) + int(delta_text)
        self._check(str(total).encode("utf-8"))
        stub.put_private_data(collection, key, str(total).encode("utf-8"))
        return b""

    def del_private(self, stub: ChaincodeStub, args: list) -> bytes:
        """Delete gated on the *current* value satisfying the constraint.

        Mirrors §V-A4: org1 requires k1 < 15 to delete, org2 requires
        k1 > 10.  Reading the current value makes this a read+delete
        transaction at constrained members; the unconstrained non-member
        still produces a delete-only rwset... which would diverge.  To
        keep endorsements comparable (and faithfully model the paper's
        delete-only experiment), the constraint is checked against the
        *claimed* value passed by the client in transient['current'],
        so the rwset stays write-only everywhere.
        """
        require_args(args, 2, "a collection and a key")
        if self._constraint is not None:
            claimed = stub.get_transient("current")
            if claimed is None:
                raise ChaincodeError("missing transient field 'current' for constrained delete")
            self._check(claimed)
        return super().del_private(stub, args)
