"""A plain public-data asset chaincode (quickstart workload).

Exercises every public-data operation of Table I: read-only, write-only,
read-write and delete-only transactions.
"""

from __future__ import annotations

from repro.chaincode.api import Chaincode, require_args
from repro.chaincode.stub import ChaincodeStub
from repro.common.errors import ChaincodeError


class AssetContract(Chaincode):
    """CRUD over public assets stored as ``asset:<id>``."""

    @staticmethod
    def _asset_key(asset_id: str) -> str:
        return f"asset:{asset_id}"

    def create_asset(self, stub: ChaincodeStub, args: list) -> bytes:
        """``create_asset(id, value)`` — write-only transaction."""
        require_args(args, 2, "an asset id and a value")
        asset_id, value = args
        stub.put_state(self._asset_key(asset_id), value.encode("utf-8"))
        return b""

    def read_asset(self, stub: ChaincodeStub, args: list) -> bytes:
        """``read_asset(id)`` — read-only; value returned via payload."""
        require_args(args, 1, "an asset id")
        value = stub.get_state(self._asset_key(args[0]))
        if value is None:
            raise ChaincodeError(f"asset {args[0]!r} does not exist")
        return value

    def update_asset(self, stub: ChaincodeStub, args: list) -> bytes:
        """``update_asset(id, value)`` — read-write (existence check + write)."""
        require_args(args, 2, "an asset id and a value")
        asset_id, value = args
        if stub.get_state(self._asset_key(asset_id)) is None:
            raise ChaincodeError(f"asset {asset_id!r} does not exist")
        stub.put_state(self._asset_key(asset_id), value.encode("utf-8"))
        return b""

    def add_to_asset(self, stub: ChaincodeStub, args: list) -> bytes:
        """``add_to_asset(id, delta)`` — the read-modify-write of §IV-A3."""
        require_args(args, 2, "an asset id and an integer delta")
        asset_id, delta_text = args
        current = stub.get_state(self._asset_key(asset_id))
        if current is None:
            raise ChaincodeError(f"asset {asset_id!r} does not exist")
        try:
            total = int(current.decode("utf-8")) + int(delta_text)
        except ValueError as exc:
            raise ChaincodeError(f"asset {asset_id!r} is not numeric: {exc}") from exc
        stub.put_state(self._asset_key(asset_id), str(total).encode("utf-8"))
        return str(total).encode("utf-8")

    def set_asset_policy(self, stub: ChaincodeStub, args: list) -> bytes:
        """``set_asset_policy(id, policy)`` — attach a key-level endorsement
        policy (state-based endorsement) to an asset."""
        require_args(args, 2, "an asset id and a signature policy")
        asset_id, policy_text = args
        stub.set_state_validation_parameter(self._asset_key(asset_id), policy_text)
        return b""

    def get_asset_policy(self, stub: ChaincodeStub, args: list) -> bytes:
        """``get_asset_policy(id)`` — the committed key-level policy, if any."""
        require_args(args, 1, "an asset id")
        policy = stub.get_state_validation_parameter(self._asset_key(args[0]))
        return (policy or "").encode("utf-8")

    def delete_asset(self, stub: ChaincodeStub, args: list) -> bytes:
        """``delete_asset(id)`` — delete-only transaction."""
        require_args(args, 1, "an asset id")
        stub.del_state(self._asset_key(args[0]))
        return b""

    def list_assets(self, stub: ChaincodeStub, args: list) -> bytes:
        """``list_assets()`` — range scan over every asset (phantom-protected)."""
        require_args(args, 0, "no arguments")
        entries = stub.get_state_by_range("asset:", "asset;")  # ';' = ':' + 1
        listing = ",".join(f"{key.split(':', 1)[1]}={value.decode('utf-8', 'replace')}"
                           for key, value in entries)
        return listing.encode("utf-8")

    def transfer_asset(self, stub: ChaincodeStub, args: list) -> bytes:
        """``transfer_asset(from_id, to_id)`` — multi-key read-write."""
        require_args(args, 2, "a source and a destination asset id")
        src, dst = args
        value = stub.get_state(self._asset_key(src))
        if value is None:
            raise ChaincodeError(f"asset {src!r} does not exist")
        stub.del_state(self._asset_key(src))
        stub.put_state(self._asset_key(dst), value)
        return value
