"""The chaincode programming model.

A chaincode is a class whose public methods are invocable functions; the
method receives the :class:`~repro.chaincode.stub.ChaincodeStub` and the
string arguments, and returns the bytes that become the ``payload`` field
of the proposal response — the very field Use Case 3 warns about.

Chaincode is *customizable per peer* (Section IV-A1): different peers may
install different implementations of the same chaincode name, e.g. to add
org-specific validation — or, in the paper's attacks, to collude on forged
results.  Only the produced read/write sets and responses must agree
across endorsers for a transaction to assemble.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.common.errors import ChaincodeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.chaincode.stub import ChaincodeStub

ChaincodeFn = Callable[["ChaincodeStub", list], Optional[bytes]]


class Chaincode:
    """Base class for chaincode implementations.

    Subclasses define invocable functions as public methods taking
    ``(stub, args)`` where ``args`` is a list of strings, and returning
    ``bytes`` (the response payload) or ``None`` (empty payload).
    Raising :class:`ChaincodeError` (or any exception) fails the proposal
    with status 500.
    """

    def invoke(self, stub: "ChaincodeStub", function: str, args: list) -> bytes:
        handler = self._resolve(function)
        result = handler(stub, list(args))
        if result is None:
            return b""
        if not isinstance(result, bytes):
            raise ChaincodeError(
                f"function {function!r} returned {type(result).__name__}, expected bytes"
            )
        return result

    def _resolve(self, function: str) -> ChaincodeFn:
        if function.startswith("_"):
            raise ChaincodeError(f"function {function!r} is not invocable")
        handler = getattr(self, function, None)
        if handler is None or not callable(handler):
            raise ChaincodeError(f"chaincode {type(self).__name__} has no function {function!r}")
        return handler

    def functions(self) -> list[str]:
        """Names of the invocable functions (for documentation/tools)."""
        return sorted(
            name
            for name in dir(self)
            if not name.startswith("_")
            and name not in ("invoke", "functions")
            and callable(getattr(self, name))
        )


def require_args(args: list, count: int, usage: str) -> None:
    """Argument-count guard used by the bundled contracts."""
    if len(args) != count:
        raise ChaincodeError(f"incorrect arguments: expecting {usage}")
