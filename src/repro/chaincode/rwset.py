"""Read/write sets: the execution-phase artifact validated at commit time.

Section III-B1 of the paper defines the semantics reproduced here
(Table I):

* a **read** records ``(key, version)`` — the version found in the world
  state at simulation time, or "absent" when the key does not exist;
* a **write** records ``(key, value, is_delete)`` — derived purely from
  the chaincode, *without* touching the world state, which is why PDC
  non-member peers can endorse write-only transactions (Use Case 1);
* a **delete** is a write with ``is_delete=True`` and a null value.

Private data never appears in plaintext on-chain: collection reads and
writes are recorded in *hashed* form inside the public read/write set,
while the plaintext collection writes travel off-chain (the "private
rwset" disseminated over gossip).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.hashing import hash_key, hash_value
from repro.ledger.version import Version


@dataclass(frozen=True)
class KVRead:
    """A public read: ``(key, version)``; ``version is None`` = key absent."""

    key: str
    version: Optional[Version]

    def to_wire(self) -> dict:
        return {"key": self.key, "version": self.version.to_wire() if self.version else None}


@dataclass(frozen=True)
class KVWrite:
    """A public write: ``(key, value, is_delete)``."""

    key: str
    value: Optional[bytes]
    is_delete: bool = False

    def to_wire(self) -> dict:
        return {"key": self.key, "value": self.value, "is_delete": self.is_delete}


@dataclass(frozen=True)
class KVReadHash:
    """A hashed private read: ``(hash(key), version)``.

    Note it carries the genuine *version* from the hash store — the fact
    that ``GetPrivateDataHash`` yields the same version as
    ``GetPrivateData`` is the lever of the paper's endorsement forgery.
    """

    key_hash: bytes
    version: Optional[Version]

    def to_wire(self) -> dict:
        return {
            "key_hash": self.key_hash,
            "version": self.version.to_wire() if self.version else None,
        }


@dataclass(frozen=True)
class KVWriteHash:
    """A hashed private write: ``(hash(key), hash(value), is_delete)``."""

    key_hash: bytes
    value_hash: Optional[bytes]
    is_delete: bool = False

    def to_wire(self) -> dict:
        return {
            "key_hash": self.key_hash,
            "value_hash": self.value_hash,
            "is_delete": self.is_delete,
        }


@dataclass(frozen=True)
class KVMetadataWrite:
    """A metadata write — in practice: a key-level endorsement policy.

    ``SetStateValidationParameter`` records one of these; at commit it
    lands in the world state's metadata and from then on governs who may
    endorse writes to ``key`` (state-based endorsement).
    """

    key: str
    name: str
    value: bytes

    def to_wire(self) -> dict:
        return {"key": self.key, "name": self.name, "value": self.value}


@dataclass(frozen=True)
class RangeQueryInfo:
    """A recorded range scan: bounds plus every ``(key, version)`` seen.

    At validation time the committer re-scans ``[start_key, end_key)``
    against the *current* world state and compares: any key inserted,
    deleted or updated inside the range since simulation is a **phantom
    read** and invalidates the transaction (Fabric's
    ``PHANTOM_READ_CONFLICT``).
    """

    start_key: str
    end_key: str  # "" = unbounded
    reads: tuple[KVRead, ...] = ()

    def to_wire(self) -> dict:
        return {
            "start_key": self.start_key,
            "end_key": self.end_key,
            "reads": [r.to_wire() for r in self.reads],
        }


@dataclass(frozen=True)
class HashedCollectionRWSet:
    """The on-chain (hashed) part of one collection's reads/writes."""

    collection: str
    hashed_reads: tuple[KVReadHash, ...] = ()
    hashed_writes: tuple[KVWriteHash, ...] = ()

    def to_wire(self) -> dict:
        return {
            "collection": self.collection,
            "hashed_reads": [r.to_wire() for r in self.hashed_reads],
            "hashed_writes": [w.to_wire() for w in self.hashed_writes],
        }

    @property
    def has_writes(self) -> bool:
        return bool(self.hashed_writes)

    @property
    def has_reads(self) -> bool:
        return bool(self.hashed_reads)


@dataclass(frozen=True)
class NamespaceRWSet:
    """All reads/writes of one chaincode namespace within a transaction."""

    namespace: str
    reads: tuple[KVRead, ...] = ()
    writes: tuple[KVWrite, ...] = ()
    collections: tuple[HashedCollectionRWSet, ...] = ()
    range_queries: tuple[RangeQueryInfo, ...] = ()
    metadata_writes: tuple[KVMetadataWrite, ...] = ()

    def to_wire(self) -> dict:
        return {
            "namespace": self.namespace,
            "reads": [r.to_wire() for r in self.reads],
            "writes": [w.to_wire() for w in self.writes],
            "collections": [c.to_wire() for c in self.collections],
            "range_queries": [q.to_wire() for q in self.range_queries],
            "metadata_writes": [m.to_wire() for m in self.metadata_writes],
        }

    def collection(self, name: str) -> Optional[HashedCollectionRWSet]:
        for col in self.collections:
            if col.collection == name:
                return col
        return None


@dataclass(frozen=True)
class TxReadWriteSet:
    """The complete on-chain read/write set of a transaction."""

    namespaces: tuple[NamespaceRWSet, ...] = ()

    def to_wire(self) -> dict:
        return {"namespaces": [ns.to_wire() for ns in self.namespaces]}

    def namespace(self, name: str) -> Optional[NamespaceRWSet]:
        for ns in self.namespaces:
            if ns.namespace == name:
                return ns
        return None

    @property
    def is_read_only(self) -> bool:
        """No public writes and no hashed collection writes anywhere.

        Fabric's key-level validator skips collection-policy checks for
        such transactions — the rule behind Use Case 2 / the fake-read
        injection attack.
        """
        for ns in self.namespaces:
            if ns.writes or ns.metadata_writes:
                return False
            if any(col.hashed_writes for col in ns.collections):
                return False
        return True

    def collections_touched(self) -> set[tuple[str, str]]:
        """All ``(namespace, collection)`` pairs referenced by the rwset."""
        return {
            (ns.namespace, col.collection)
            for ns in self.namespaces
            for col in ns.collections
        }


@dataclass(frozen=True)
class PrivateCollectionWrites:
    """Plaintext writes of one collection — the off-chain private rwset."""

    namespace: str
    collection: str
    writes: tuple[KVWrite, ...] = ()

    def to_wire(self) -> dict:
        return {
            "namespace": self.namespace,
            "collection": self.collection,
            "writes": [w.to_wire() for w in self.writes],
        }

    def matches_hashes(self, hashed: HashedCollectionRWSet) -> bool:
        """Verify these plaintext writes against their on-chain hashes.

        Member peers run this check before committing private data
        received over gossip (Section III-A2, last sentence).
        """
        if len(self.writes) != len(hashed.hashed_writes):
            return False
        for plain, hashed_write in zip(self.writes, hashed.hashed_writes):
            if hash_key(plain.key) != hashed_write.key_hash:
                return False
            if plain.is_delete != hashed_write.is_delete:
                return False
            if plain.is_delete:
                continue
            if plain.value is None or hashed_write.value_hash is None:
                return False
            if hash_value(plain.value) != hashed_write.value_hash:
                return False
        return True


@dataclass
class SimulationResult:
    """Everything chaincode simulation produces at an endorser.

    ``rwset`` (with hashed collections) goes into the signed proposal
    response; ``private_writes`` stays at the endorser and is disseminated
    to collection members over gossip.
    """

    rwset: TxReadWriteSet
    private_writes: tuple[PrivateCollectionWrites, ...] = ()


class RWSetBuilder:
    """Accumulates reads/writes during one chaincode simulation.

    Later writes to the same key overwrite earlier ones (read-your-own-
    writes is handled by the stub); reads record only the *first* version
    observed per key, as Fabric does.
    """

    def __init__(self) -> None:
        self._reads: dict[tuple[str, str], KVRead] = {}
        self._writes: dict[tuple[str, str], KVWrite] = {}
        self._col_reads: dict[tuple[str, str, bytes], KVReadHash] = {}
        self._col_writes: dict[tuple[str, str, str], KVWrite] = {}
        self._range_queries: list[tuple[str, RangeQueryInfo]] = []
        self._metadata_writes: dict[tuple[str, str, str], KVMetadataWrite] = {}

    # -- public data ----------------------------------------------------
    def add_read(self, namespace: str, key: str, version: Optional[Version]) -> None:
        self._reads.setdefault((namespace, key), KVRead(key=key, version=version))

    def add_write(self, namespace: str, key: str, value: bytes) -> None:
        self._writes[(namespace, key)] = KVWrite(key=key, value=value, is_delete=False)

    def add_delete(self, namespace: str, key: str) -> None:
        self._writes[(namespace, key)] = KVWrite(key=key, value=None, is_delete=True)

    def get_write(self, namespace: str, key: str) -> Optional[KVWrite]:
        return self._writes.get((namespace, key))

    def pending_writes(self, namespace: str) -> dict[str, KVWrite]:
        """This simulation's own uncommitted writes (for range overlays)."""
        return {key: w for (ns, key), w in self._writes.items() if ns == namespace}

    def add_range_query(
        self, namespace: str, start_key: str, end_key: str, reads: tuple[KVRead, ...]
    ) -> None:
        self._range_queries.append(
            (namespace, RangeQueryInfo(start_key=start_key, end_key=end_key, reads=reads))
        )

    def add_metadata_write(self, namespace: str, key: str, name: str, value: bytes) -> None:
        self._metadata_writes[(namespace, key, name)] = KVMetadataWrite(
            key=key, name=name, value=value
        )

    # -- private data ---------------------------------------------------
    def add_private_read(
        self, namespace: str, collection: str, key_hash: bytes, version: Optional[Version]
    ) -> None:
        self._col_reads.setdefault(
            (namespace, collection, key_hash), KVReadHash(key_hash=key_hash, version=version)
        )

    def add_private_write(self, namespace: str, collection: str, key: str, value: bytes) -> None:
        self._col_writes[(namespace, collection, key)] = KVWrite(
            key=key, value=value, is_delete=False
        )

    def add_private_delete(self, namespace: str, collection: str, key: str) -> None:
        self._col_writes[(namespace, collection, key)] = KVWrite(
            key=key, value=None, is_delete=True
        )

    def get_private_write(self, namespace: str, collection: str, key: str) -> Optional[KVWrite]:
        return self._col_writes.get((namespace, collection, key))

    # -- assembly ---------------------------------------------------------
    def build(self) -> SimulationResult:
        """Produce the on-chain rwset and the off-chain private writes."""
        namespaces: dict[str, dict] = {}

        def bucket(ns: str) -> dict:
            return namespaces.setdefault(ns, {"reads": [], "writes": [], "cols": {}})

        for (ns, _), read in sorted(self._reads.items()):
            bucket(ns)["reads"].append(read)
        for (ns, _), write in sorted(self._writes.items()):
            bucket(ns)["writes"].append(write)
        for (ns, col, _), read in sorted(self._col_reads.items()):
            bucket(ns)["cols"].setdefault(col, {"reads": [], "writes": []})["reads"].append(read)
        for ns, query in self._range_queries:
            bucket(ns).setdefault("ranges", []).append(query)
        for (ns, _, _), meta in sorted(self._metadata_writes.items()):
            bucket(ns).setdefault("metadata", []).append(meta)

        private: dict[tuple[str, str], list[KVWrite]] = {}
        for (ns, col, _), write in sorted(self._col_writes.items()):
            col_bucket = bucket(ns)["cols"].setdefault(col, {"reads": [], "writes": []})
            value_hash = None if write.is_delete else hash_value(write.value or b"")
            col_bucket["writes"].append(
                KVWriteHash(
                    key_hash=hash_key(write.key),
                    value_hash=value_hash,
                    is_delete=write.is_delete,
                )
            )
            private.setdefault((ns, col), []).append(write)

        ns_sets = tuple(
            NamespaceRWSet(
                namespace=ns,
                reads=tuple(data["reads"]),
                writes=tuple(data["writes"]),
                range_queries=tuple(data.get("ranges", ())),
                metadata_writes=tuple(data.get("metadata", ())),
                collections=tuple(
                    HashedCollectionRWSet(
                        collection=col,
                        hashed_reads=tuple(col_data["reads"]),
                        hashed_writes=tuple(col_data["writes"]),
                    )
                    for col, col_data in sorted(data["cols"].items())
                ),
            )
            for ns, data in sorted(namespaces.items())
        )
        private_writes = tuple(
            PrivateCollectionWrites(namespace=ns, collection=col, writes=tuple(writes))
            for (ns, col), writes in sorted(private.items())
        )
        return SimulationResult(
            rwset=TxReadWriteSet(namespaces=ns_sets), private_writes=private_writes
        )
