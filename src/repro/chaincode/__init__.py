"""Chaincode programming model: shim, rwsets, bundled contracts."""

from repro.chaincode.api import Chaincode, require_args
from repro.chaincode.rwset import (
    HashedCollectionRWSet,
    KVRead,
    KVReadHash,
    KVWrite,
    KVWriteHash,
    NamespaceRWSet,
    PrivateCollectionWrites,
    RWSetBuilder,
    SimulationResult,
    TxReadWriteSet,
)
from repro.chaincode.stub import ChaincodeStub

__all__ = [
    "Chaincode",
    "require_args",
    "HashedCollectionRWSet",
    "KVRead",
    "KVReadHash",
    "KVWrite",
    "KVWriteHash",
    "NamespaceRWSet",
    "PrivateCollectionWrites",
    "RWSetBuilder",
    "SimulationResult",
    "TxReadWriteSet",
    "ChaincodeStub",
]
