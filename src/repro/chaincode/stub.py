"""The chaincode shim: the world-state API chaincode programs against.

Reproduces the Fabric shim semantics the paper's analysis rests on:

* ``get_state`` / ``get_private_data`` record ``(key, version)`` reads
  (Table I) and therefore *fail at PDC non-members*, who do not hold the
  original private data (Use Case 1);
* ``put_*`` / ``del_*`` record writes derived purely from the chaincode,
  touching no state — which is why non-members endorse write-only and
  delete-only PDC transactions without error;
* ``get_private_data_hash`` works at **every** peer and records a hashed
  read carrying the *genuine version* from the hash store — the API the
  paper's endorsement-forgery attack (Section IV-A1) abuses.

Reads observe the simulation's own earlier writes (read-your-own-writes),
matching Fabric's transaction simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.errors import ChaincodeError, KeyNotFoundError
from repro.common.hashing import hash_key
from repro.chaincode.rwset import RWSetBuilder, SimulationResult
from repro.identity.identity import Certificate
from repro.ledger.ledger import PeerLedger
from repro.protocol.proposal import Proposal

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import ChannelConfig


class ChaincodeStub:
    """One simulation context: proposal + peer-local state + rwset builder."""

    def __init__(
        self,
        proposal: Proposal,
        ledger: PeerLedger,
        channel: "ChannelConfig",
        local_msp_id: str,
    ) -> None:
        self._proposal = proposal
        self._ledger = ledger
        self._channel = channel
        self._local_msp_id = local_msp_id
        self._builder = RWSetBuilder()
        self._namespace = proposal.chaincode_id
        self._event: "tuple[str, bytes] | None" = None

    # -- proposal context -------------------------------------------------
    @property
    def tx_id(self) -> str:
        return self._proposal.tx_id

    @property
    def channel_id(self) -> str:
        return self._proposal.channel_id

    @property
    def local_msp_id(self) -> str:
        """MSP id of the peer running this simulation (shim extension)."""
        return self._local_msp_id

    def get_creator(self) -> Certificate:
        """The client identity that signed the proposal."""
        return self._proposal.creator

    def get_transient(self, key: str) -> Optional[bytes]:
        """Private input passed outside the signed proposal bytes."""
        return self._proposal.transient.get(key)

    def get_args(self) -> list[str]:
        return list(self._proposal.args)

    def set_event(self, name: str, payload: bytes = b"") -> None:
        """Emit a chaincode event (at most one per transaction, as in Fabric).

        The event travels inside the signed proposal-response and is
        committed with the transaction — **in plaintext**, at every peer.
        Putting private data into an event payload leaks it exactly like
        the ``payload`` field of Use Case 3.
        """
        if not name:
            raise ChaincodeError("event name must be non-empty")
        self._event = (name, payload)

    @property
    def event(self) -> "tuple[str, bytes] | None":
        return self._event

    # -- public data -------------------------------------------------------
    def get_state(self, key: str) -> Optional[bytes]:
        """Read a public key; records ``(key, version)`` in the read set."""
        pending = self._builder.get_write(self._namespace, key)
        if pending is not None:
            return None if pending.is_delete else pending.value
        entry = self._ledger.world_state.get(self._namespace, key)
        self._builder.add_read(self._namespace, key, entry.version if entry else None)
        return entry.value if entry else None

    def put_state(self, key: str, value: bytes) -> None:
        """Write a public key; records ``(key, value, false)`` in the write set."""
        self._check_key(key)
        self._builder.add_write(self._namespace, key, value)

    def del_state(self, key: str) -> None:
        """Delete a public key; a write with ``is_delete=true`` (Table I)."""
        self._check_key(key)
        self._builder.add_delete(self._namespace, key)

    def set_state_validation_parameter(self, key: str, policy_text: str) -> None:
        """Attach a key-level endorsement policy to ``key``.

        From the commit of this transaction on, writes to ``key`` are
        validated against this signature policy *instead of* the
        chaincode-level policy (state-based endorsement,
        ``validator_keylevel.go``).  The key must exist — either
        committed or written earlier in this simulation.
        """
        from repro.policy.parser import parse_policy

        self._check_key(key)
        parse_policy(policy_text)  # fail at simulation time on bad policy
        exists = (
            self._builder.get_write(self._namespace, key) is not None
            or self._ledger.world_state.get(self._namespace, key) is not None
        )
        if not exists:
            raise KeyNotFoundError(self._namespace, key)
        self._builder.add_metadata_write(
            self._namespace,
            key,
            self._ledger.world_state.VALIDATION_PARAMETER,
            policy_text.encode("utf-8"),
        )

    def get_state_validation_parameter(self, key: str) -> Optional[str]:
        """The committed key-level endorsement policy of ``key``, if any."""
        raw = self._ledger.world_state.get_validation_parameter(self._namespace, key)
        return raw.decode("utf-8") if raw is not None else None

    def get_state_by_range(self, start_key: str, end_key: str) -> list[tuple[str, bytes]]:
        """Scan public keys in ``[start_key, end_key)`` (empty = unbounded).

        Records a :class:`RangeQueryInfo` so validation can detect
        *phantom reads*: keys appearing in, vanishing from, or changing
        within the range between simulation and commit invalidate the
        transaction.  The scan observes this simulation's own pending
        writes, but only committed state enters the recorded query info —
        matching Fabric's transaction simulator.
        """
        from repro.chaincode.rwset import KVRead

        committed: list[tuple[str, bytes]] = []
        recorded: list[KVRead] = []
        for key, entry in self._ledger.world_state.items(self._namespace):
            if key < start_key or (end_key and key >= end_key):
                continue
            committed.append((key, entry.value))
            recorded.append(KVRead(key=key, version=entry.version))
        self._builder.add_range_query(
            self._namespace, start_key, end_key, tuple(recorded)
        )

        # Overlay read-your-own-writes.
        merged = dict(committed)
        for key, write in self._builder.pending_writes(self._namespace).items():
            if key < start_key or (end_key and key >= end_key):
                continue
            if write.is_delete:
                merged.pop(key, None)
            else:
                merged[key] = write.value or b""
        return sorted(merged.items())

    def get_query_result(self, selector: dict) -> list[tuple[str, bytes]]:
        """CouchDB-style rich query over this namespace's JSON values.

        **Not validated at commit** (matching Fabric): unlike
        ``get_state_by_range``, nothing is recorded in the read set, so
        results can be stale or phantom-ridden by the time the
        transaction commits.  Use it for queries, never for decisions
        that writes depend on.
        """
        from repro.ledger.rich_query import execute_rich_query

        return execute_rich_query(
            self._ledger.world_state.items(self._namespace), selector
        )

    # -- private data --------------------------------------------------------
    def get_private_data(self, collection: str, key: str) -> bytes:
        """Read original private data.

        Only PDC member peers hold the original ``(key, value, version)``;
        at a non-member the key is simply absent and the shim raises
        :class:`KeyNotFoundError`, failing the endorsement — the behaviour
        Use Case 1 documents for read-only/read-write proposals.
        """
        config = self._collection_config(collection)
        if config.member_only_read and not config.is_member_org(self._local_msp_id):
            raise ChaincodeError(
                f"GetPrivateData failed: {self._local_msp_id} is not authorized to "
                f"read collection {collection!r} (memberOnlyRead)"
            )
        pending = self._builder.get_private_write(self._namespace, collection, key)
        if pending is not None:
            if pending.is_delete or pending.value is None:
                raise KeyNotFoundError(self._namespace, key, collection)
            return pending.value
        hashed = self._ledger.private_hashes.get_by_key(self._namespace, collection, key)
        self._builder.add_private_read(
            self._namespace, collection, hash_key(key), hashed.version if hashed else None
        )
        entry = self._ledger.private_data.get(self._namespace, collection, key)
        if entry is None:
            raise KeyNotFoundError(self._namespace, key, collection)
        return entry.value

    def get_private_data_hash(self, collection: str, key: str) -> Optional[bytes]:
        """Read the *hash* of private data — available at every peer.

        Records a hashed read ``(hash(key), version)`` with the same
        version ``get_private_data`` would have recorded, because both
        stores are updated atomically at commit.  This is the primitive
        that lets a malicious non-member forge a valid-looking read set.
        """
        config = self._collection_config(collection)
        assert config is not None  # existence check only; hashes are never member-gated
        hashed = self._ledger.private_hashes.get_by_key(self._namespace, collection, key)
        self._builder.add_private_read(
            self._namespace, collection, hash_key(key), hashed.version if hashed else None
        )
        return hashed.value_hash if hashed else None

    def put_private_data(self, collection: str, key: str, value: bytes) -> None:
        """Write private data; no state interaction, so *any* peer endorses it
        (unless ``memberOnlyWrite`` gates non-members)."""
        self._check_key(key)
        config = self._collection_config(collection)
        if config.member_only_write and not config.is_member_org(self._local_msp_id):
            raise ChaincodeError(
                f"PutPrivateData failed: {self._local_msp_id} is not authorized to "
                f"write collection {collection!r} (memberOnlyWrite)"
            )
        self._builder.add_private_write(self._namespace, collection, key, value)

    def del_private_data(self, collection: str, key: str) -> None:
        """Delete private data — the write-only special case of Table I."""
        self._check_key(key)
        config = self._collection_config(collection)
        if config.member_only_write and not config.is_member_org(self._local_msp_id):
            raise ChaincodeError(
                f"DelPrivateData failed: {self._local_msp_id} is not authorized to "
                f"write collection {collection!r} (memberOnlyWrite)"
            )
        self._builder.add_private_delete(self._namespace, collection, key)

    # -- internals ----------------------------------------------------------
    def _collection_config(self, collection: str):
        return self._channel.collection(self._namespace, collection)

    @staticmethod
    def _check_key(key: str) -> None:
        if not key:
            raise ChaincodeError("state keys must be non-empty")

    def build_result(self) -> SimulationResult:
        """Finish the simulation: produce rwset + off-chain private writes."""
        return self._builder.build()
