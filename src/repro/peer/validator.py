"""Transaction validation: the proof-of-policy (PoP) consensus checks.

Every committing peer validates each transaction of a delivered block
independently, through the two checks the paper names (Section II-B3):

1. **Endorsement policy check** — are there enough *valid* endorsement
   signatures from identities satisfying the applicable policy?
2. **Version conflict check (MVCC)** — do the versions recorded in the
   read set still match the committed state?

The policy-selection rules are where the paper's Use Case 2 lives, and
they reproduce Fabric's ``validator_keylevel.go`` behaviour:

* collection *writes* are validated against the collection-level policy
  when one is defined (otherwise the chaincode-level policy);
* **read-only transactions are always validated against the
  chaincode-level policy** — even when a collection-level policy exists —
  which is what lets forged PDC reads through;
* **New Feature 1** adds the collection-level policy check for collections
  *read* by a read-only transaction, closing that hole.

The supplemental defense filters endorsements from PDC non-member orgs
before evaluating any policy of a PDC transaction.
"""

from __future__ import annotations

import hashlib
import os
from typing import TYPE_CHECKING, Optional, Sequence

from repro.common import crypto
from repro.common.tracing import PERF
from repro.core.defense.features import FrameworkFeatures
from repro.identity.identity import Certificate
from repro.ledger.block import Block
from repro.ledger.ledger import PeerLedger
from repro.ledger.version import Version
from repro.protocol.transaction import TransactionEnvelope, ValidationCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import ChannelConfig


def shared_vscc_enabled() -> bool:
    """The ``REPRO_SHARED_VSCC=0`` escape hatch (read per block)."""
    return os.environ.get("REPRO_SHARED_VSCC", "1") != "0"


def batch_verify_enabled() -> bool:
    """``REPRO_BATCH_VERIFY=0`` disables the batched signature pre-pass."""
    return os.environ.get("REPRO_BATCH_VERIFY", "1") != "0"


# The shared VSCC memo: per channel object, {(block hash, features) ->
# flag tuple}.  Validation is a deterministic function of (block bytes,
# channel policies, feature flags, pre-block ledger state); the block
# hash pins the whole chain prefix — and therefore the pre-block state —
# while the channel object pins the policies and MSP roots, so the
# 2nd..Nth peer validating the same delivered block reuses the first
# peer's flags without re-running any crypto.  Stashing the memo on the
# channel *instance* (every peer of a network shares one ChannelConfig)
# means distinct networks never share entries even when their blocks are
# byte-identical (seed replays rebuild the channel from scratch), and the
# memo's lifetime is exactly the channel's.
_SHARED_VSCC_MAX_BLOCKS = 65_536


def _shared_memo_for(channel: "ChannelConfig") -> dict:
    memo = getattr(channel, "_vscc_memo", None)
    if memo is None:
        memo = {}
        channel._vscc_memo = memo  # type: ignore[attr-defined]
    return memo


class Validator:
    """VSCC + MVCC validation for one peer on one channel."""

    def __init__(
        self,
        channel: "ChannelConfig",
        features: FrameworkFeatures,
        use_shared_memo: Optional[bool] = None,
        use_batch: Optional[bool] = None,
    ) -> None:
        self._channel = channel
        self._features = features
        self._evaluator = channel.evaluator()
        # None -> consult REPRO_SHARED_VSCC per block; True/False -> pin.
        self._use_shared_memo = use_shared_memo
        # None -> consult REPRO_BATCH_VERIFY per block; True/False -> pin.
        self._use_batch = use_batch
        # Per-channel certificate-validation memo: the MSP registry
        # already caches CA checks, but it keys by a 5-field tuple built
        # per call; this memo keys by the certificate object and so costs
        # one set probe on the (very) hot validation path.  Only
        # *positive* results are memoized: an MSP can be registered on
        # the channel after this validator is built, so a rejection must
        # be re-checked, while a certificate once valid stays valid (the
        # registry has no revocation).
        self._cert_memo: set[Certificate] = set()
        # Per-block context: payload bytes computed once per envelope
        # per block-validation pass (see _prewarm_signatures).
        self._payload_bytes: Optional[dict[str, bytes]] = None

    # -- block-level entry point ------------------------------------------
    def validate_block(self, block: Block, ledger: PeerLedger) -> list[ValidationCode]:
        """Validate every transaction, honouring intra-block write order.

        Later transactions in the same block see the keys written by
        earlier *valid* transactions as conflicting (standard Fabric MVCC
        within a block).

        Fast path: if the *shared VSCC memo* holds the flag vector another
        peer already computed for this exact block (same channel, same
        feature flags — the block hash pins the chain prefix and hence the
        pre-block state), it is returned without re-running any checks.
        Otherwise all of the block's signature checks are collected into
        one batched Schnorr verification before the per-transaction rules
        run.
        """
        memo: Optional[dict] = None
        memo_key = None
        use_memo = (
            shared_vscc_enabled()
            if self._use_shared_memo is None
            else self._use_shared_memo
        )
        if use_memo:
            memo = _shared_memo_for(self._channel)
            memo_key = (block.header.block_hash(), self._features)
            hit = memo.get(memo_key)
            if hit is not None:
                PERF.vscc_memo_hits += 1
                return list(hit)
        flags = self._validate_block_fresh(block, ledger)
        if memo is not None:
            PERF.vscc_memo_misses += 1
            if len(memo) >= _SHARED_VSCC_MAX_BLOCKS:  # pragma: no cover - backstop
                memo.clear()
            memo[memo_key] = tuple(flags)
        return flags

    def _validate_block_fresh(
        self, block: Block, ledger: PeerLedger
    ) -> list[ValidationCode]:
        self._payload_bytes = {}
        use_batch = (
            batch_verify_enabled() if self._use_batch is None else self._use_batch
        )
        try:
            if use_batch:
                self._prewarm_signatures(block, ledger)
            return self._validate_block_inner(block, ledger)
        finally:
            self._payload_bytes = None

    def _prewarm_signatures(self, block: Block, ledger: PeerLedger) -> None:
        """Collect the block's signature checks into one batched call.

        The batch call settles every signature in the shared verification
        cache, so the per-transaction pipeline below finds each `verify`
        already answered; validation *decisions* are taken by exactly the
        same rules in the same order as the unbatched path.
        """
        items = self._collect_signature_items(block, ledger, self._payload_bytes)
        if len(items) > 1:
            crypto.verify_batch(items, seed=block.header.prev_hash)

    def _collect_signature_items(
        self, block: Block, ledger: PeerLedger, payload_bytes_out: Optional[dict]
    ) -> list[tuple]:
        """The block's batchable ``(public_key, message, signature)`` checks.

        Only transactions that survive the cheap structural pre-checks
        (duplicate tx-id, channel, chaincode, certificate validity,
        response status) contribute — anything else short-circuits before
        its signatures are ever consulted.  Serialized payload bytes are
        stashed in ``payload_bytes_out`` (when given) for reuse by the
        per-transaction pipeline.
        """
        items: list[tuple] = []
        seen: set[str] = set()
        for tx in block.transactions:
            eligible = (
                tx.tx_id not in seen
                and not ledger.blockchain.has_transaction(tx.tx_id)
                and tx.channel_id == self._channel.channel_id
                and bool(self._channel.chaincodes.get(tx.chaincode_id))
                and self._certificate_valid(tx.creator)
            )
            seen.add(tx.tx_id)
            if not eligible:
                continue
            items.append((tx.creator.public_key, tx.signed_bytes(), tx.signature))
            if not tx.payload.response.ok:
                continue
            payload_bytes = tx.payload.bytes()
            if payload_bytes_out is not None:
                payload_bytes_out[tx.tx_id] = payload_bytes
            for endorsement in tx.endorsements:
                if self._certificate_valid(endorsement.endorser):
                    items.append(
                        (endorsement.endorser.public_key, payload_bytes, endorsement.signature)
                    )
        return items

    def signature_workload(self, block: Block, ledger: PeerLedger) -> list[int]:
        """Per-public-key signature group sizes for this block.

        This is the weight vector the execution backend's shard planner
        (and the simulated-time :class:`~repro.runtime.executor.\
ValidationCostModel`) operate on — the batch verifier keeps each key's
        signatures in one shard, so the group sizes bound the achievable
        split.  No cryptography runs; only the structural pre-checks the
        batch collector itself performs.
        """
        groups: dict[int, int] = {}
        for public_key, _message, _signature in self._collect_signature_items(
            block, ledger, None
        ):
            groups[public_key.y] = groups.get(public_key.y, 0) + 1
        return list(groups.values())

    def _validate_block_inner(
        self, block: Block, ledger: PeerLedger
    ) -> list[ValidationCode]:
        flags: list[ValidationCode] = []
        block_writes: set[tuple[str, str]] = set()
        block_private_writes: set[tuple[str, str, bytes]] = set()
        seen_tx_ids: set[str] = set()

        for tx in block.transactions:
            flag = self._validate_transaction(
                tx, ledger, block_writes, block_private_writes, seen_tx_ids
            )
            flags.append(flag)
            seen_tx_ids.add(tx.tx_id)
            if flag is ValidationCode.VALID:
                for ns in tx.payload.results.namespaces:
                    for write in ns.writes:
                        block_writes.add((ns.namespace, write.key))
                    for col in ns.collections:
                        for hashed_write in col.hashed_writes:
                            block_private_writes.add(
                                (ns.namespace, col.collection, hashed_write.key_hash)
                            )
        return flags

    _CERT_MEMO_MAX = 8192  # backstop; distinct valid certs per channel are few

    def _certificate_valid(self, certificate: Certificate) -> bool:
        if certificate in self._cert_memo:
            return True
        valid = self._channel.msp_registry.validate_certificate(certificate)
        if valid:
            if len(self._cert_memo) >= self._CERT_MEMO_MAX:  # pragma: no cover
                self._cert_memo.clear()
            self._cert_memo.add(certificate)
        return valid

    # -- per-transaction pipeline ------------------------------------------
    def _validate_transaction(
        self,
        tx: TransactionEnvelope,
        ledger: PeerLedger,
        block_writes: set[tuple[str, str]],
        block_private_writes: set[tuple[str, str, bytes]],
        seen_tx_ids: set[str],
    ) -> ValidationCode:
        if tx.tx_id in seen_tx_ids or ledger.blockchain.has_transaction(tx.tx_id):
            return ValidationCode.DUPLICATE_TXID
        if tx.channel_id != self._channel.channel_id:
            return ValidationCode.INVALID_OTHER
        if not self._channel.chaincodes.get(tx.chaincode_id):
            return ValidationCode.INVALID_OTHER
        if not self._certificate_valid(tx.creator):
            return ValidationCode.BAD_CREATOR_SIGNATURE
        if not tx.verify_creator_signature():
            return ValidationCode.BAD_CREATOR_SIGNATURE
        if not tx.payload.response.ok:
            return ValidationCode.BAD_RESPONSE_STATUS
        if not self._check_endorsement_policies(tx, ledger):
            return ValidationCode.ENDORSEMENT_POLICY_FAILURE
        if not self._check_versions(tx, ledger, block_writes, block_private_writes):
            return ValidationCode.MVCC_READ_CONFLICT
        if not self._check_range_queries(tx, ledger, block_writes):
            return ValidationCode.PHANTOM_READ_CONFLICT
        return ValidationCode.VALID

    # -- check 1: endorsement policy ---------------------------------------
    def _valid_signers(self, tx: TransactionEnvelope) -> list[Certificate]:
        """Certificates whose endorsement signature verifies over the payload.

        Invalid signatures are dropped rather than failing the transaction
        — they simply do not count towards any policy, as in Fabric.
        """
        cached_bytes = self._payload_bytes
        if cached_bytes is not None and tx.tx_id in cached_bytes:
            payload_bytes = cached_bytes[tx.tx_id]
        else:
            payload_bytes = tx.payload.bytes()
        signers = []
        for endorsement in tx.endorsements:
            if not self._certificate_valid(endorsement.endorser):
                continue
            if endorsement.verify(payload_bytes):
                signers.append(endorsement.endorser)
        return signers

    def _check_endorsement_policies(self, tx: TransactionEnvelope, ledger: PeerLedger) -> bool:
        definition = self._channel.chaincode(tx.chaincode_id)
        results = tx.payload.results
        signers = self._valid_signers(tx)

        touched = results.collections_touched()
        if touched and self._features.filter_nonmember_endorsements:
            # Supplemental defense: a PDC transaction only counts
            # endorsements from organizations that are members of every
            # collection it touches.
            member_orgs: set[str] | None = None
            for namespace, collection_name in touched:
                config = self._channel.collection(namespace, collection_name)
                orgs = config.member_orgs()
                member_orgs = orgs if member_orgs is None else member_orgs & orgs
            signers = [c for c in signers if c.msp_id in (member_orgs or set())]

        chaincode_policy_needed = False
        extra_policies: list[str] = []

        if results.is_read_only:
            # The vulnerable rule: read-only transactions use the
            # chaincode-level policy, full stop (Use Case 2) — neither
            # collection-level nor key-level policies of the keys *read*
            # are consulted.
            chaincode_policy_needed = True
            if self._features.collection_policy_on_reads:
                # New Feature 1: also apply collection-level policies to
                # the collections this read-only transaction *read*.
                for namespace, collection_name in sorted(touched):
                    config = self._channel.collection(namespace, collection_name)
                    if config.endorsement_policy is not None:
                        extra_policies.append(config.endorsement_policy)
        else:
            for ns in results.namespaces:
                # Public writes: governed by the key-level policy when one
                # is committed for the key (state-based endorsement),
                # otherwise by the chaincode-level policy.
                for write in ns.writes:
                    key_policy = ledger.world_state.get_validation_parameter(
                        ns.namespace, write.key
                    )
                    if key_policy is not None:
                        extra_policies.append(key_policy.decode("utf-8"))
                    else:
                        chaincode_policy_needed = True
                # Changing a key's policy requires satisfying its current one.
                for meta in ns.metadata_writes:
                    key_policy = ledger.world_state.get_validation_parameter(
                        ns.namespace, meta.key
                    )
                    if key_policy is not None:
                        extra_policies.append(key_policy.decode("utf-8"))
                    else:
                        chaincode_policy_needed = True
                # Collection writes: collection-level policy or fallback.
                for col in ns.collections:
                    if not col.hashed_writes:
                        continue
                    config = self._channel.collection(ns.namespace, col.collection)
                    if config.endorsement_policy is not None:
                        extra_policies.append(config.endorsement_policy)
                    else:
                        chaincode_policy_needed = True

        if chaincode_policy_needed and not self._evaluator.evaluate(
            definition.endorsement_policy, signers
        ):
            return False
        for policy_text in extra_policies:
            if not self._evaluator.evaluate(policy_text, signers):
                return False
        return True

    # -- check 2: version conflicts (MVCC) -----------------------------------
    def _check_versions(
        self,
        tx: TransactionEnvelope,
        ledger: PeerLedger,
        block_writes: set[tuple[str, str]],
        block_private_writes: set[tuple[str, str, bytes]],
    ) -> bool:
        """The version conflict check of the PoP protocol.

        Note what this check does **not** do: it never re-executes the
        chaincode and never inspects the response payload — which is why
        a fabricated payload with a genuine ``(key, version)`` read set
        sails through (Section IV-A1).
        """
        for ns in tx.payload.results.namespaces:
            for read in ns.reads:
                if (ns.namespace, read.key) in block_writes:
                    return False
                committed: Version | None = ledger.world_state.get_version(ns.namespace, read.key)
                if committed != read.version:
                    return False
            for col in ns.collections:
                for hashed_read in col.hashed_reads:
                    key = (ns.namespace, col.collection, hashed_read.key_hash)
                    if key in block_private_writes:
                        return False
                    committed_private = ledger.private_hashes.get_version(
                        ns.namespace, col.collection, hashed_read.key_hash
                    )
                    if committed_private != hashed_read.version:
                        return False
        return True

    # -- phantom reads: range-query re-execution ------------------------------
    def _check_range_queries(
        self,
        tx: TransactionEnvelope,
        ledger: PeerLedger,
        block_writes: set[tuple[str, str]],
    ) -> bool:
        """Re-scan each recorded range against current state and compare.

        Any insertion, deletion or version change within the range since
        simulation — including by earlier transactions in this block — is
        a phantom read.
        """
        for ns in tx.payload.results.namespaces:
            for query in ns.range_queries:
                current: list[tuple[str, Version]] = []
                for key, entry in ledger.world_state.items(ns.namespace):
                    if key < query.start_key or (query.end_key and key >= query.end_key):
                        continue
                    current.append((key, entry.version))
                recorded = [(r.key, r.version) for r in query.reads]
                if current != recorded:
                    return False
                # Earlier transactions in this same block may have written
                # (inserted, updated or deleted) keys inside the range.
                for write_ns, key in block_writes:
                    if write_ns != ns.namespace:
                        continue
                    if key >= query.start_key and (not query.end_key or key < query.end_key):
                        return False
        return True


# ---------------------------------------------------------------------------
# Multi-channel block validation
# ---------------------------------------------------------------------------

def validate_blocks(
    jobs: Sequence[tuple[Validator, Block, PeerLedger]],
) -> list[list[ValidationCode]]:
    """Validate one block per channel with a single combined signature pass.

    A peer serving several channels (P2 in Fig. 1) receives one block per
    channel per delivery round; validating them one at a time leaves the
    execution backend's workers idle between blocks.  This entry point
    collects every job's batchable signature checks into **one**
    ``verify_batch`` call — which the backend shards across its workers —
    then runs each job's full validation pipeline *in job order*, where
    every signature check is already settled in the shared verification
    cache.  The flags are therefore byte-identical to calling
    ``validator.validate_block(block, ledger)`` per job: the combined
    batch only changes where (and how parallel) the crypto runs, never
    what any rule decides.

    ``jobs`` is a sequence of ``(validator, block, ledger)`` triples; the
    per-job flag lists come back in the same order — the deterministic
    merge point at the block boundary.
    """
    items: list[tuple] = []
    transcript = hashlib.sha256(b"repro-multi-channel-batch")
    for validator, block, ledger in jobs:
        use_batch = (
            batch_verify_enabled()
            if validator._use_batch is None
            else validator._use_batch
        )
        if not use_batch:
            continue
        items.extend(validator._collect_signature_items(block, ledger, None))
        transcript.update(block.header.block_hash())
    if len(items) > 1:
        crypto.verify_batch(items, seed=transcript.digest())
    return [
        validator.validate_block(block, ledger) for validator, block, ledger in jobs
    ]
