"""The endorsement half of a peer (execution phase, steps 2-4 of Fig. 2).

The endorser simulates the proposed chaincode function against its *local*
ledger, producing a read/write set and a chaincode response, then signs
the proposal-response payload.  Two paper-relevant behaviours live here:

* simulation runs the **peer's own** installed contract for the chaincode
  name — contracts are customizable per peer, which is what lets malicious
  peers collude on forged results;
* under **New Feature 2** the endorser signs the payload-*hashed* variant
  of the proposal response whenever the transaction touches a private
  collection, while still returning the original to the client (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.chaincode.api import Chaincode
from repro.chaincode.rwset import PrivateCollectionWrites
from repro.chaincode.stub import ChaincodeStub
from repro.common.errors import EndorsementError
from repro.core.defense.features import FrameworkFeatures
from repro.identity.identity import SigningIdentity
from repro.ledger.ledger import PeerLedger
from repro.protocol.proposal import Proposal
from repro.protocol.response import (
    STATUS_ERROR,
    ChaincodeResponse,
    Endorsement,
    ProposalResponse,
    ProposalResponsePayload,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import ChannelConfig


@dataclass(frozen=True)
class EndorsementOutput:
    """What endorsing produces: the response plus the off-chain private writes."""

    response: ProposalResponse
    private_writes: tuple[PrivateCollectionWrites, ...]


class Endorser:
    """Simulates proposals and signs proposal responses for one peer."""

    def __init__(
        self,
        identity: SigningIdentity,
        ledger: PeerLedger,
        channel: "ChannelConfig",
        chaincodes: Mapping[str, Chaincode],
        features: FrameworkFeatures,
    ) -> None:
        self._identity = identity
        self._ledger = ledger
        self._channel = channel
        self._chaincodes = chaincodes
        self._features = features

    def process_proposal(self, proposal: Proposal) -> EndorsementOutput:
        """Simulate and endorse; raises :class:`EndorsementError` on failure.

        A failed simulation produces a status-500 response and **no
        endorsement** — the error carries the failure response so clients
        can inspect the ``message`` field, mirroring Fabric.
        """
        contract = self._chaincodes.get(proposal.chaincode_id)
        if contract is None:
            raise EndorsementError(
                f"chaincode {proposal.chaincode_id!r} is not installed on "
                f"{self._identity.enrollment_id}"
            )
        stub = ChaincodeStub(
            proposal=proposal,
            ledger=self._ledger,
            channel=self._channel,
            local_msp_id=self._identity.msp_id,
        )
        try:
            payload_bytes = contract.invoke(stub, proposal.function, list(proposal.args))
        except Exception as exc:  # chaincode failures become 500 responses
            failure = ChaincodeResponse(status=STATUS_ERROR, message=str(exc), payload=b"")
            error = EndorsementError(
                f"chaincode {proposal.chaincode_id!r} failed at "
                f"{self._identity.enrollment_id}: {exc}"
            )
            error.response = failure  # type: ignore[attr-defined]
            raise error from exc

        simulation = stub.build_result()
        response = ChaincodeResponse(status=200, message="", payload=payload_bytes)
        event = None
        if stub.event is not None:
            from repro.protocol.response import ChaincodeEvent

            event = ChaincodeEvent(name=stub.event[0], payload=stub.event[1])
        original_payload = ProposalResponsePayload(
            proposal_hash=proposal.proposal_hash(),
            results=simulation.rwset,
            response=response,
            event=event,
        )

        touches_private = bool(simulation.rwset.collections_touched())
        if self._features.hashed_payload_endorsement and touches_private:
            # New Feature 2: sign (and ship for assembly) the hashed-payload
            # variant; the client still receives the original response.
            signed_payload = original_payload.with_hashed_payload()
        else:
            signed_payload = original_payload

        endorsement = Endorsement(
            endorser=self._identity.certificate,
            signature=self._identity.sign(signed_payload.bytes()),
        )
        proposal_response = ProposalResponse(
            payload=signed_payload,
            endorsement=endorsement,
            client_response=response,
        )
        return EndorsementOutput(
            response=proposal_response, private_writes=simulation.private_writes
        )
