"""The endorsement half of a peer (execution phase, steps 2-4 of Fig. 2).

The endorser simulates the proposed chaincode function against its *local*
ledger, producing a read/write set and a chaincode response, then signs
the proposal-response payload.  Two paper-relevant behaviours live here:

* simulation runs the **peer's own** installed contract for the chaincode
  name — contracts are customizable per peer, which is what lets malicious
  peers collude on forged results;
* under **New Feature 2** the endorser signs the payload-*hashed* variant
  of the proposal response whenever the transaction touches a private
  collection, while still returning the original to the client (Fig. 4).
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from repro.chaincode.api import Chaincode
from repro.chaincode.rwset import PrivateCollectionWrites
from repro.chaincode.stub import ChaincodeStub
from repro.common import crypto
from repro.common.errors import EndorsementError
from repro.common.tracing import PERF
from repro.core.defense.features import FrameworkFeatures
from repro.identity.identity import SigningIdentity
from repro.ledger.ledger import PeerLedger
from repro.protocol.proposal import Proposal
from repro.protocol.response import (
    STATUS_ERROR,
    ChaincodeResponse,
    Endorsement,
    ProposalResponse,
    ProposalResponsePayload,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import ChannelConfig

#: Bound on cached endorsements per peer between commits; a commit clears
#: the cache anyway, the cap only guards against unbounded query storms.
_SIM_CACHE_MAX = 512


def endorse_cache_enabled() -> bool:
    """``REPRO_ENDORSE_CACHE=0`` disables the peer-side simulation cache."""
    return os.environ.get("REPRO_ENDORSE_CACHE", "1") != "0"


#: Every live endorser, so ``clear_simulation_caches`` (hooked into
#: ``crypto.clear_caches``) can reach the per-instance simulation caches.
#: Weak references: registration must not keep dead networks alive.
_LIVE_ENDORSERS: "weakref.WeakSet[Endorser]" = weakref.WeakSet()


def clear_simulation_caches() -> None:
    """Drop every live endorser's simulation cache (test/bench isolation)."""
    for endorser in list(_LIVE_ENDORSERS):
        endorser._sim_cache.clear()
        endorser._sim_cache_height = -1


crypto.register_cache_clearer(clear_simulation_caches)


@dataclass(frozen=True)
class EndorsementOutput:
    """What endorsing produces: the response plus the off-chain private writes."""

    response: ProposalResponse
    private_writes: tuple[PrivateCollectionWrites, ...]


class Endorser:
    """Simulates proposals and signs proposal responses for one peer."""

    def __init__(
        self,
        identity: SigningIdentity,
        ledger: PeerLedger,
        channel: "ChannelConfig",
        chaincodes: Mapping[str, Chaincode],
        features: FrameworkFeatures,
        use_sim_cache: Optional[bool] = None,
    ) -> None:
        self._identity = identity
        self._ledger = ledger
        self._channel = channel
        self._chaincodes = chaincodes
        self._features = features
        # None = consult REPRO_ENDORSE_CACHE per call (PR 4 toggle pattern).
        self._use_sim_cache = use_sim_cache
        self._sim_cache: dict[bytes, EndorsementOutput] = {}
        self._sim_cache_height = -1
        _LIVE_ENDORSERS.add(self)

    def _cache_enabled(self) -> bool:
        if self._use_sim_cache is not None:
            return self._use_sim_cache
        return endorse_cache_enabled()

    def _cache_lookup(self, proposal: Proposal, reusable: bool) -> Optional[EndorsementOutput]:
        """Answer from the simulation cache, invalidating on state change.

        Cached entries are only valid against the exact ledger height they
        were simulated at — any commit may change what the chaincode would
        read — so the whole cache is dropped when the height moves.  Two
        key kinds coexist: the exact proposal hash (idempotent redelivery
        of the *same* proposal, e.g. a plan retry) and the nonce-free
        simulation digest, consulted only for ``reusable`` requests (the
        ``evaluate_transaction`` query path, where the caller discards the
        envelope and only wants the result).  A reusable lookup checks
        *only* the digest key: a fresh-nonce query can never match an
        exact proposal hash, and computing it would serialize the whole
        proposal a second time — on this path the lookup itself is the
        hot loop.
        """
        height = self._ledger.height
        if height != self._sim_cache_height:
            self._sim_cache.clear()
            self._sim_cache_height = height
            return None
        if reusable:
            hit = self._sim_cache.get(proposal.simulation_digest())
        else:
            hit = self._sim_cache.get(proposal.proposal_hash())
        if hit is not None:
            PERF.endorse_cache_hits += 1
        return hit

    def _cache_store(self, proposal: Proposal, output: EndorsementOutput) -> None:
        """Cache read-only results (no public or private writes).

        Write-bearing simulations are never cached: their effects (private
        write staging, version conflicts) must be observed per request.
        """
        if output.private_writes or not output.response.payload.results.is_read_only:
            return
        if len(self._sim_cache) >= _SIM_CACHE_MAX:
            self._sim_cache.clear()
        self._sim_cache[proposal.proposal_hash()] = output
        self._sim_cache[proposal.simulation_digest()] = output

    def process_proposal(
        self, proposal: Proposal, reusable: bool = False
    ) -> EndorsementOutput:
        """Simulate and endorse; raises :class:`EndorsementError` on failure.

        A failed simulation produces a status-500 response and **no
        endorsement** — the error carries the failure response so clients
        can inspect the ``message`` field, mirroring Fabric.

        ``reusable`` marks query-style requests whose result may be served
        from a previous simulation of the same invocation at the same
        state height (see :meth:`_cache_lookup`).
        """
        caching = self._cache_enabled()
        if caching:
            cached = self._cache_lookup(proposal, reusable)
            if cached is not None:
                return cached
        contract = self._chaincodes.get(proposal.chaincode_id)
        if contract is None:
            raise EndorsementError(
                f"chaincode {proposal.chaincode_id!r} is not installed on "
                f"{self._identity.enrollment_id}"
            )
        stub = ChaincodeStub(
            proposal=proposal,
            ledger=self._ledger,
            channel=self._channel,
            local_msp_id=self._identity.msp_id,
        )
        PERF.endorse_simulations += 1
        try:
            payload_bytes = contract.invoke(stub, proposal.function, list(proposal.args))
        except Exception as exc:  # chaincode failures become 500 responses
            failure = ChaincodeResponse(status=STATUS_ERROR, message=str(exc), payload=b"")
            error = EndorsementError(
                f"chaincode {proposal.chaincode_id!r} failed at "
                f"{self._identity.enrollment_id}: {exc}"
            )
            error.response = failure  # type: ignore[attr-defined]
            raise error from exc

        simulation = stub.build_result()
        response = ChaincodeResponse(status=200, message="", payload=payload_bytes)
        event = None
        if stub.event is not None:
            from repro.protocol.response import ChaincodeEvent

            event = ChaincodeEvent(name=stub.event[0], payload=stub.event[1])
        original_payload = ProposalResponsePayload(
            proposal_hash=proposal.proposal_hash(),
            results=simulation.rwset,
            response=response,
            event=event,
        )

        touches_private = bool(simulation.rwset.collections_touched())
        if self._features.hashed_payload_endorsement and touches_private:
            # New Feature 2: sign (and ship for assembly) the hashed-payload
            # variant; the client still receives the original response.
            signed_payload = original_payload.with_hashed_payload()
        else:
            signed_payload = original_payload

        PERF.endorse_signatures += 1
        # Signing goes through the execution backend: deterministic nonces
        # make the signature bytes identical whether the 1536-bit modexp
        # runs inline (serial reference) or in a worker process.
        endorsement = Endorsement(
            endorser=self._identity.certificate,
            signature=crypto.sign_with_backend(
                self._identity.private_key, signed_payload.bytes()
            ),
        )
        proposal_response = ProposalResponse(
            payload=signed_payload,
            endorsement=endorsement,
            client_response=response,
        )
        output = EndorsementOutput(
            response=proposal_response, private_writes=simulation.private_writes
        )
        if caching:
            self._cache_store(proposal, output)
        return output
