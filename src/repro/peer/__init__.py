"""Peers: endorsement, validation (VSCC + MVCC), commit."""

from repro.peer.committer import Committer
from repro.peer.endorser import EndorsementOutput, Endorser
from repro.peer.node import PeerNode
from repro.peer.validator import Validator

__all__ = ["Committer", "EndorsementOutput", "Endorser", "PeerNode", "Validator"]
