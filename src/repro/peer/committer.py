"""The commit half of a peer (validation phase, steps 14-20 of Fig. 2).

After validation, the committer applies the write sets of *valid*
transactions to the ledger:

* public writes update the world state at every peer;
* hashed private writes update the hash store at every peer;
* the original private writes are applied **only where the plaintext is
  available and matches the on-chain hashes** — member peers obtain it
  from their transient store (filled by their own endorsement or by
  gossip) and verify it before committing (Section III-A2).

If a member peer cannot obtain the plaintext, the block still commits and
the gap is recorded for later reconciliation — Fabric behaves the same.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ledger.block import Block, ValidatedBlock
from repro.ledger.ledger import MissingPrivateData, PeerLedger
from repro.ledger.version import Version
from repro.protocol.transaction import TransactionEnvelope, ValidationCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import ChannelConfig


class Committer:
    """Applies validated blocks to one peer's ledger."""

    def __init__(self, channel: "ChannelConfig", local_msp_id: str) -> None:
        self._channel = channel
        self._local_msp_id = local_msp_id
        # Observability counters (throughput benches, runtime assertions).
        self.blocks_committed = 0
        self.valid_tx_count = 0
        self.invalid_tx_count = 0

    def commit_block(
        self, block: Block, flags: list[ValidationCode], ledger: PeerLedger
    ) -> ValidatedBlock:
        """Apply all valid transactions and append the block to the chain."""
        validated = ValidatedBlock(block=block, flags=list(flags))
        self.blocks_committed += 1
        for tx_num, (tx, flag) in enumerate(zip(block.transactions, flags)):
            if flag is ValidationCode.VALID:
                self.valid_tx_count += 1
                self._apply_transaction(tx, Version(block.header.number, tx_num), ledger)
            else:
                self.invalid_tx_count += 1
            ledger.transient_store.remove_transaction(tx.tx_id)
        ledger.blockchain.append(validated)
        ledger.transient_store.purge_below(ledger.height)
        ledger.purge_expired_private(self._channel.block_to_live_map(), ledger.height)
        return validated

    def _apply_transaction(
        self, tx: TransactionEnvelope, version: Version, ledger: PeerLedger
    ) -> None:
        for ns in tx.payload.results.namespaces:
            for write in ns.writes:
                if write.is_delete:
                    ledger.world_state.delete(ns.namespace, write.key)
                else:
                    ledger.world_state.put(
                        ns.namespace, write.key, write.value or b"", version
                    )
            for meta in ns.metadata_writes:
                ledger.world_state.set_metadata(ns.namespace, meta.key, meta.name, meta.value)
            for col in ns.collections:
                if col.hashed_writes:
                    self._apply_collection_writes(tx, ns.namespace, col, version, ledger)

    def _apply_collection_writes(self, tx, namespace, hashed_col, version, ledger: PeerLedger):
        # 1. Hashed writes land at every peer.
        for hashed_write in hashed_col.hashed_writes:
            if hashed_write.is_delete:
                ledger.private_hashes.delete(namespace, hashed_col.collection, hashed_write.key_hash)
            else:
                ledger.private_hashes.put(
                    namespace,
                    hashed_col.collection,
                    hashed_write.key_hash,
                    hashed_write.value_hash or b"",
                    version,
                )

        # 2. Original writes land only where the plaintext is available.
        config = self._channel.collection(namespace, hashed_col.collection)
        is_member = config.is_member_org(self._local_msp_id)
        plaintext = ledger.transient_store.get(tx.tx_id, namespace, hashed_col.collection)

        if plaintext is None:
            if is_member:
                ledger.record_missing(
                    MissingPrivateData(
                        tx_id=tx.tx_id,
                        block_num=version.block_num,
                        namespace=namespace,
                        collection=hashed_col.collection,
                    )
                )
            return

        # A member never trusts gossip blindly: the plaintext must match
        # the hashes carried by the (already validated) transaction.
        if not plaintext.matches_hashes(hashed_col):
            if is_member:
                ledger.record_missing(
                    MissingPrivateData(
                        tx_id=tx.tx_id,
                        block_num=version.block_num,
                        namespace=namespace,
                        collection=hashed_col.collection,
                    )
                )
            return

        ledger.committed_private_rwsets[(tx.tx_id, namespace, hashed_col.collection)] = plaintext
        for write in plaintext.writes:
            if write.is_delete:
                ledger.private_data.delete(namespace, hashed_col.collection, write.key)
            else:
                ledger.private_data.put(
                    namespace, hashed_col.collection, write.key, write.value or b"", version
                )
                ledger.note_private_commit(
                    namespace, hashed_col.collection, write.key, version.block_num
                )
