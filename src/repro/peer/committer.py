"""The commit half of a peer (validation phase, steps 14-20 of Fig. 2).

After validation, the committer applies the write sets of *valid*
transactions to the ledger:

* public writes update the world state at every peer;
* hashed private writes update the hash store at every peer;
* the original private writes are applied **only where the plaintext is
  available and matches the on-chain hashes** — member peers obtain it
  from their transient store (filled by their own endorsement or by
  gossip) and verify it before committing (Section III-A2).

If a member peer cannot obtain the plaintext, the block still commits and
the gap is recorded for later reconciliation — Fabric behaves the same.

The whole block — public writes, hash writes, plaintext writes, missing
records, transient-store cleanup, BTL purges and the block itself — is
staged into **one atomic write batch** and committed in a single backend
operation.  A peer that crashes mid-commit recovers to the block
boundary: either the entire block applied or none of it did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ledger.block import Block, ValidatedBlock
from repro.ledger.ledger import MissingPrivateData, PeerLedger
from repro.ledger.version import Version
from repro.protocol.transaction import TransactionEnvelope, ValidationCode
from repro.storage import WriteBatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import ChannelConfig


class Committer:
    """Applies validated blocks to one peer's ledger."""

    def __init__(self, channel: "ChannelConfig", local_msp_id: str) -> None:
        self._channel = channel
        self._local_msp_id = local_msp_id
        # Observability counters (throughput benches, runtime assertions).
        # Updated only after the block's batch commits durably.
        self.blocks_committed = 0
        self.valid_tx_count = 0
        self.invalid_tx_count = 0

    def commit_block(
        self, block: Block, flags: list[ValidationCode], ledger: PeerLedger
    ) -> ValidatedBlock:
        """Stage all valid transactions plus the block, commit atomically."""
        validated = ValidatedBlock(block=block, flags=list(flags))
        batch = ledger.new_batch()
        valid_count = invalid_count = 0
        for tx_num, (tx, flag) in enumerate(zip(block.transactions, flags)):
            if flag is ValidationCode.VALID:
                valid_count += 1
                self._apply_transaction(
                    tx, Version(block.header.number, tx_num), ledger, batch
                )
            else:
                invalid_count += 1
            ledger.transient_store.remove_transaction(tx.tx_id, batch=batch)
        ledger.blockchain.append(validated, batch=batch)
        new_height = block.header.number + 1
        ledger.transient_store.purge_below(new_height, batch=batch)
        ledger.purge_expired_private(new_height, batch=batch)
        ledger.commit_batch(batch)
        self.blocks_committed += 1
        self.valid_tx_count += valid_count
        self.invalid_tx_count += invalid_count
        return validated

    def _apply_transaction(
        self,
        tx: TransactionEnvelope,
        version: Version,
        ledger: PeerLedger,
        batch: WriteBatch,
    ) -> None:
        for ns in tx.payload.results.namespaces:
            for write in ns.writes:
                if write.is_delete:
                    ledger.world_state.delete(ns.namespace, write.key, batch=batch)
                else:
                    ledger.world_state.put(
                        ns.namespace, write.key, write.value or b"", version, batch=batch
                    )
            for meta in ns.metadata_writes:
                ledger.world_state.set_metadata(
                    ns.namespace, meta.key, meta.name, meta.value, batch=batch
                )
            for col in ns.collections:
                if col.hashed_writes:
                    self._apply_collection_writes(tx, ns.namespace, col, version, ledger, batch)

    def _apply_collection_writes(
        self, tx, namespace, hashed_col, version, ledger: PeerLedger, batch: WriteBatch
    ):
        # 1. Hashed writes land at every peer.
        for hashed_write in hashed_col.hashed_writes:
            if hashed_write.is_delete:
                ledger.private_hashes.delete(
                    namespace, hashed_col.collection, hashed_write.key_hash, batch=batch
                )
            else:
                ledger.private_hashes.put(
                    namespace,
                    hashed_col.collection,
                    hashed_write.key_hash,
                    hashed_write.value_hash or b"",
                    version,
                    batch=batch,
                )

        # 2. Original writes land only where the plaintext is available.
        config = self._channel.collection(namespace, hashed_col.collection)
        is_member = config.is_member_org(self._local_msp_id)
        plaintext = ledger.transient_store.get(tx.tx_id, namespace, hashed_col.collection)

        if plaintext is None:
            if is_member:
                ledger.record_missing(
                    MissingPrivateData(
                        tx_id=tx.tx_id,
                        block_num=version.block_num,
                        namespace=namespace,
                        collection=hashed_col.collection,
                    ),
                    batch=batch,
                )
            return

        # A member never trusts gossip blindly: the plaintext must match
        # the hashes carried by the (already validated) transaction.
        if not plaintext.matches_hashes(hashed_col):
            if is_member:
                ledger.record_missing(
                    MissingPrivateData(
                        tx_id=tx.tx_id,
                        block_num=version.block_num,
                        namespace=namespace,
                        collection=hashed_col.collection,
                    ),
                    batch=batch,
                )
            return

        ledger.committed_private_rwsets.stage(
            tx.tx_id, namespace, hashed_col.collection, plaintext, batch
        )
        for write in plaintext.writes:
            if write.is_delete:
                ledger.private_data.delete(
                    namespace, hashed_col.collection, write.key, batch=batch
                )
            else:
                ledger.private_data.put(
                    namespace, hashed_col.collection, write.key, write.value or b"",
                    version, batch=batch,
                )
                ledger.note_private_commit(
                    namespace,
                    hashed_col.collection,
                    write.key,
                    version.block_num,
                    btl=config.block_to_live,
                    batch=batch,
                )
