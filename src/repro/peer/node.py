"""A peer node: endorser + validator + committer + local ledger.

Each peer holds its own :class:`PeerLedger`, its own (possibly customized)
chaincode installations, and its own framework feature flags — a defended
network is simply a network of peers constructed with the defense features
enabled.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.chaincode.api import Chaincode
from repro.chaincode.rwset import PrivateCollectionWrites
from repro.common.errors import ConfigError, EndorsementError
from repro.common.tracing import PERF
from repro.core.defense.features import FrameworkFeatures
from repro.identity.identity import Certificate, SigningIdentity
from repro.ledger.block import Block, ValidatedBlock
from repro.ledger.ledger import PeerLedger
from repro.ledger.snapshot import (
    SNAPSHOT_POLICY,
    SnapshotManifest,
    SnapshotPackage,
    SnapshotRecord,
    SnapshotStore,
    build_snapshot,
    filter_package_for,
    resolve_prune,
    resolve_snapshot_every,
)
from repro.peer.committer import Committer
from repro.peer.endorser import EndorsementOutput, Endorser
from repro.peer.validator import Validator
from repro.protocol.proposal import Proposal
from repro.protocol.transaction import ValidationCode
from repro.storage import KVBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import ChannelConfig

CommitListener = Callable[["PeerNode", ValidatedBlock], None]
SnapshotSigListener = Callable[["PeerNode", SnapshotManifest, Certificate, bytes], None]
SnapshotSealListener = Callable[["PeerNode", SnapshotRecord], None]


class PeerNode:
    """One peer on one channel."""

    def __init__(
        self,
        identity: SigningIdentity,
        channel: "ChannelConfig",
        features: FrameworkFeatures | None = None,
        backend: Optional[KVBackend] = None,
        snapshot_every: Optional[int] = None,
        prune: Optional[bool] = None,
    ) -> None:
        self.identity = identity
        self.channel = channel
        self.features = features or FrameworkFeatures.original()
        self.ledger = PeerLedger(backend)
        self.crashed = False
        self.snapshot_every = resolve_snapshot_every(snapshot_every)
        self.prune_enabled = resolve_prune(prune)
        self.snapshots = SnapshotStore(self.ledger)
        self._chaincodes: dict[str, Chaincode] = {}
        self._endorser = Endorser(
            identity=identity,
            ledger=self.ledger,
            channel=channel,
            chaincodes=self._chaincodes,
            features=self.features,
        )
        self._validator = Validator(channel=channel, features=self.features)
        self._committer = Committer(channel=channel, local_msp_id=identity.msp_id)
        self._commit_listeners: list[CommitListener] = []
        self._snapshot_sig_listeners: list[SnapshotSigListener] = []
        self._snapshot_seal_listeners: list[SnapshotSealListener] = []
        # Signatures received for a snapshot height this peer has not yet
        # produced (peers commit the same block at different instants).
        self._pending_snapshot_sigs: dict[int, list] = {}

    # -- identity helpers ---------------------------------------------------
    @property
    def name(self) -> str:
        return self.identity.enrollment_id

    @property
    def msp_id(self) -> str:
        return self.identity.msp_id

    @property
    def certificate(self) -> Certificate:
        return self.identity.certificate

    def is_collection_member(self, chaincode_id: str, collection: str) -> bool:
        return self.channel.collection(chaincode_id, collection).is_member_org(self.msp_id)

    # -- chaincode installation ----------------------------------------------
    def install_chaincode(self, name: str, contract: Chaincode) -> None:
        """Install (or replace) this peer's implementation of ``name``.

        Installing a *different* implementation than other peers is legal
        — the customizable-chaincode feature — and is how both the per-org
        business constraints and the paper's collusion attacks are set up.
        """
        if not self.channel.chaincodes.get(name):
            raise ConfigError(f"chaincode {name!r} is not deployed on {self.channel.channel_id!r}")
        self._chaincodes[name] = contract

    def installed_chaincodes(self) -> list[str]:
        return sorted(self._chaincodes)

    # -- crash / recovery -----------------------------------------------------
    def crash(self) -> None:
        """Simulate the peer process dying: drop its storage handles."""
        if not self.crashed:
            self.crashed = True
            self._pending_snapshot_sigs.clear()
            self.ledger.crash()

    def restart(self) -> None:
        """Recover the ledger from its durable medium and rejoin."""
        if self.crashed:
            self.ledger.reopen()
            self.crashed = False

    # -- execution phase ------------------------------------------------------
    def endorse(self, proposal: Proposal, reusable: bool = False) -> EndorsementOutput:
        """Simulate + sign a proposal (raises EndorsementError on failure).

        ``reusable`` marks query-style requests eligible for the peer-side
        simulation cache (see :class:`~repro.peer.endorser.Endorser`).
        """
        if self.crashed:
            raise EndorsementError(f"peer {self.name} is down")
        return self._endorser.process_proposal(proposal, reusable=reusable)

    def stage_private_writes(
        self, tx_id: str, private_writes: tuple[PrivateCollectionWrites, ...]
    ) -> None:
        """Park plaintext private writes until the transaction commits."""
        for writes in private_writes:
            self.ledger.transient_store.put(tx_id, writes, self.ledger.height)

    def receive_private_data(self, tx_id: str, writes: PrivateCollectionWrites) -> None:
        """Gossip push handler: store disseminated private data."""
        self.ledger.transient_store.put(tx_id, writes, self.ledger.height)

    def receive_private_batch(
        self, tx_id: str, batch: tuple[PrivateCollectionWrites, ...]
    ) -> None:
        """Batched-gossip handler: one payload, every collection rwset.

        Routed through :meth:`receive_private_data` per record so that the
        per-record handler stays the single delivery seam in both
        dissemination modes.
        """
        for writes in batch:
            self.receive_private_data(tx_id, writes)

    # -- validation phase ------------------------------------------------------
    def deliver_block(self, block: Block) -> ValidatedBlock:
        """Validate and commit an ordered block (steps 13-20 of Fig. 2)."""
        started = time.perf_counter()
        flags = self._validator.validate_block(block, self.ledger)
        validated_at = time.perf_counter()
        validated = self._committer.commit_block(block, flags, self.ledger)
        PERF.add_phase_time("validate", validated_at - started)
        PERF.add_phase_time("commit", time.perf_counter() - validated_at)
        for listener in self._commit_listeners:
            listener(self, validated)
        self.maybe_snapshot()
        return validated

    def on_commit(self, listener: CommitListener) -> None:
        self._commit_listeners.append(listener)

    # -- snapshot checkpointing ------------------------------------------------
    def on_snapshot_sig(self, listener: SnapshotSigListener) -> None:
        """Observe this peer's own manifest signatures (gossip broadcast)."""
        self._snapshot_sig_listeners.append(listener)

    def on_snapshot_seal(self, listener: SnapshotSealListener) -> None:
        """Observe snapshots reaching policy quorum at this peer."""
        self._snapshot_seal_listeners.append(listener)

    def maybe_snapshot(self) -> Optional[SnapshotRecord]:
        """Produce a snapshot when the ledger height hits the interval."""
        every = self.snapshot_every
        height = self.ledger.height
        if not every or height == 0 or height % every != 0:
            return None
        if self.snapshots.get(height) is not None:
            return None
        return self.produce_snapshot()

    def produce_snapshot(self) -> SnapshotRecord:
        """Capture, sign and store a snapshot at the current height."""
        record = build_snapshot(self.ledger, self.channel.channel_id)
        manifest = record.manifest
        signature = self.identity.sign(manifest.signing_bytes())
        record.signatures[self.name] = (self.certificate, signature)
        # Apply signatures that arrived before this peer reached the height.
        for certificate, sig, their_manifest in self._pending_snapshot_sigs.pop(
            manifest.height, ()
        ):
            if their_manifest == manifest:
                record.signatures[certificate.enrollment_id] = (certificate, sig)
        self.snapshots.put(record)
        self._check_seal(record)
        for listener in self._snapshot_sig_listeners:
            listener(self, manifest, self.certificate, signature)
        return record

    def receive_snapshot_sig(
        self, manifest: SnapshotManifest, certificate: Certificate, signature: bytes
    ) -> None:
        """Gossip handler: accumulate another peer's manifest signature."""
        if self.crashed:
            return
        if not self.channel.msp_registry.validate_certificate(certificate):
            return
        if not certificate.public_key.verify(manifest.signing_bytes(), signature):
            return
        record = self.snapshots.get(manifest.height)
        if record is None:
            if manifest.height > self.ledger.height:
                self._pending_snapshot_sigs.setdefault(manifest.height, []).append(
                    (certificate, signature, manifest)
                )
            return
        if record.manifest != manifest:
            # Divergent state at the same height: never co-sign it.
            return
        if certificate.enrollment_id in record.signatures:
            return
        record.signatures[certificate.enrollment_id] = (certificate, signature)
        self.snapshots.put(record)
        self._check_seal(record)

    def _check_seal(self, record: SnapshotRecord) -> None:
        if record.sealed:
            return
        certs = [cert for cert, _ in record.signatures.values()]
        if not self.channel.evaluator().evaluate(SNAPSHOT_POLICY, certs):
            return
        record.sealed = True
        self.snapshots.put(record)
        self.snapshots.retain_latest()
        if self.prune_enabled:
            self.ledger.blockchain.prune_to(record.manifest.height)
        for listener in self._snapshot_seal_listeners:
            listener(self, record)

    def latest_sealed_snapshot(self) -> Optional[SnapshotRecord]:
        return self.snapshots.latest_sealed()

    def serve_snapshot(self, msp_id: str) -> Optional[SnapshotPackage]:
        """Serve the latest sealed snapshot, filtered for ``msp_id``."""
        record = self.snapshots.latest_sealed()
        if record is None:
            return None
        return filter_package_for(record, self.channel, msp_id)

    def validation_workload(self, block: Block) -> list[int]:
        """Per-key signature group sizes of validating ``block`` here.

        The weight vector the runtime's :class:`~repro.runtime.executor.\
ValidationCostModel` charges service time for; no crypto runs.
        """
        return self._validator.signature_workload(block, self.ledger)

    # -- reconciliation ----------------------------------------------------------
    def serve_private_data(
        self, tx_id: str, namespace: str, collection: str
    ) -> Optional[PrivateCollectionWrites]:
        """Serve a committed private rwset to a reconciling member peer."""
        return self.ledger.committed_private_rwsets.get((tx_id, namespace, collection))

    def serve_private_batch(
        self, requests: tuple[tuple[str, str, str], ...]
    ) -> list[tuple[str, str, str, PrivateCollectionWrites]]:
        """Serve a batched multi-gap pull: every requested rwset held here."""
        responses = []
        for tx_id, namespace, collection in requests:
            writes = self.ledger.committed_private_rwsets.get(
                (tx_id, namespace, collection)
            )
            if writes is not None:
                responses.append((tx_id, namespace, collection, writes))
        return responses

    def private_digest(
        self, scopes: tuple[tuple[str, str], ...]
    ) -> dict[tuple[str, str], tuple[str, ...]]:
        """Sorted tx ids with an archived private rwset, per scope."""
        return {
            (namespace, collection): tuple(
                sorted(
                    self.ledger.committed_private_rwsets.tx_ids_for(
                        namespace, collection
                    )
                )
            )
            for namespace, collection in scopes
        }

    # -- queries (used by applications, tests and the leakage analysis) -------
    def query_public(self, chaincode_id: str, key: str) -> Optional[bytes]:
        entry = self.ledger.world_state.get(chaincode_id, key)
        return entry.value if entry else None

    def query_private(self, chaincode_id: str, collection: str, key: str) -> Optional[bytes]:
        entry = self.ledger.private_data.get(chaincode_id, collection, key)
        return entry.value if entry else None

    def query_private_hash(self, chaincode_id: str, collection: str, key: str) -> Optional[bytes]:
        entry = self.ledger.private_hashes.get_by_key(chaincode_id, collection, key)
        return entry.value_hash if entry else None

    def transaction_status(self, tx_id: str) -> Optional[ValidationCode]:
        found = self.ledger.blockchain.find_transaction(tx_id)
        return found[1] if found else None

    # -- commit observability (throughput benches, runtime assertions) --------
    @property
    def blocks_committed(self) -> int:
        return self._committer.blocks_committed

    @property
    def valid_tx_count(self) -> int:
        return self._committer.valid_tx_count

    @property
    def invalid_tx_count(self) -> int:
        return self._committer.invalid_tx_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PeerNode({self.name!r}, features={self.features.describe()!r})"
