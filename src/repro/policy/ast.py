"""Signature policy expression tree.

A signature policy is a logical expression over MSP principals, built from
``AND``, ``OR`` and ``NOutOf`` combinators (Section II of the paper).  A
policy evaluates a *set of signer certificates*: it returns true when the
signers include identities matching enough principals.

Evaluation semantics match Fabric's: each leaf principal may be satisfied
by any one signer, and a single signer may satisfy multiple leaves (Fabric
deduplicates identities per leaf, not globally — e.g. ``AND(Org1.peer,
Org1.peer)`` is satisfied by one Org1 peer signing once, but
``AND(Org1.peer, Org2.peer)`` needs signers from both orgs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.identity.identity import Certificate
from repro.identity.roles import Role

# A predicate deciding whether a certificate satisfies (msp_id, role);
# supplied by the evaluator so MSP validation stays pluggable.
PrincipalMatcher = Callable[[Certificate, str, Role], bool]


class PolicyNode:
    """Base class of signature-policy AST nodes."""

    def evaluate(self, signers: Sequence[Certificate], matcher: PrincipalMatcher) -> bool:
        raise NotImplementedError

    def principals(self) -> list["Principal"]:
        """All leaf principals mentioned by the policy (with duplicates)."""
        raise NotImplementedError

    def msp_ids(self) -> set[str]:
        return {p.msp_id for p in self.principals()}


@dataclass(frozen=True)
class Principal(PolicyNode):
    """A leaf: ``MspId.role`` — e.g. ``Org1MSP.peer``."""

    msp_id: str
    role: Role

    def evaluate(self, signers: Sequence[Certificate], matcher: PrincipalMatcher) -> bool:
        return any(matcher(cert, self.msp_id, self.role) for cert in signers)

    def principals(self) -> list["Principal"]:
        return [self]

    def __str__(self) -> str:
        return f"'{self.msp_id}.{self.role.value}'"


@dataclass(frozen=True)
class NOutOf(PolicyNode):
    """``n`` of the sub-policies must be satisfied.

    ``AND`` is ``NOutOf(len(children))`` and ``OR`` is ``NOutOf(1)``; the
    parser produces this single node type for all three spellings, the way
    Fabric compiles policies to ``SignaturePolicy.NOutOf``.
    """

    n: int
    children: tuple[PolicyNode, ...]
    spelling: str = "OutOf"  # retained for round-tripping to text

    def __post_init__(self) -> None:
        if not 0 <= self.n <= len(self.children):
            raise ValueError(
                f"NOutOf threshold {self.n} out of range for {len(self.children)} children"
            )

    def evaluate(self, signers: Sequence[Certificate], matcher: PrincipalMatcher) -> bool:
        satisfied = sum(1 for child in self.children if child.evaluate(signers, matcher))
        return satisfied >= self.n

    def principals(self) -> list[Principal]:
        return [p for child in self.children for p in child.principals()]

    def __str__(self) -> str:
        inner = ", ".join(str(child) for child in self.children)
        if self.spelling == "AND":
            return f"AND({inner})"
        if self.spelling == "OR":
            return f"OR({inner})"
        return f"OutOf({self.n}, {inner})"


def and_(*children: PolicyNode) -> NOutOf:
    """Convenience constructor: all children must be satisfied."""
    return NOutOf(n=len(children), children=tuple(children), spelling="AND")


def or_(*children: PolicyNode) -> NOutOf:
    """Convenience constructor: any child suffices."""
    return NOutOf(n=1, children=tuple(children), spelling="OR")


def out_of(n: int, *children: PolicyNode) -> NOutOf:
    """Convenience constructor: ``n`` of the children must be satisfied."""
    return NOutOf(n=n, children=tuple(children), spelling="OutOf")
