"""ImplicitMeta policies: ``ANY | ALL | MAJORITY <sub-policy name>``.

An implicitMeta policy does not name principals directly; it aggregates the
*per-organization* signature policies of a channel.  ``MAJORITY
Endorsement`` — the default chaincode-level endorsement policy, and per the
paper's GitHub study by far the most common (116/120 configtx.yaml) — is
Eq. (1) of the paper:

    Majority(e_1, ..., e_n) = floor(1/2 + (sum(e_i) - 1/2) / n)

where ``e_i`` is the boolean result of org i's own "Endorsement" signature
policy.  Because the per-org policies are typically ``OR(orgI.peer)``, the
implicitMeta policy is satisfied by *any* peers from a majority of orgs —
including PDC non-member orgs, which is exactly the misuse the paper's
injection attacks exploit.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.common.errors import PolicyError
from repro.identity.identity import Certificate
from repro.policy.ast import NOutOf, PolicyNode, PrincipalMatcher

_IMPLICIT_RE = re.compile(r"^\s*(ANY|ALL|MAJORITY)\s+([A-Za-z0-9_-]+)\s*$", re.IGNORECASE)


def majority_threshold(n: int) -> int:
    """Strict-majority threshold from Eq. (1): smallest t with t/n > 1/2."""
    if n <= 0:
        raise PolicyError("majority over zero organizations is undefined")
    return math.floor(n / 2) + 1


@dataclass(frozen=True)
class ImplicitMetaPolicy:
    """``rule`` over the sub-policy named ``sub_policy`` of each org."""

    rule: str  # "ANY" | "ALL" | "MAJORITY"
    sub_policy: str  # e.g. "Endorsement"

    def __post_init__(self) -> None:
        if self.rule not in ("ANY", "ALL", "MAJORITY"):
            raise PolicyError(f"unknown implicitMeta rule {self.rule!r}")

    def threshold(self, org_count: int) -> int:
        if self.rule == "ANY":
            return 1 if org_count else 0
        if self.rule == "ALL":
            return org_count
        return majority_threshold(org_count)

    def resolve(self, org_policies: Mapping[str, PolicyNode]) -> "ResolvedImplicitMeta":
        """Bind the meta policy to a channel's per-org sub-policies."""
        if not org_policies:
            raise PolicyError("implicitMeta policy over an empty organization set")
        ordered = tuple(org_policies[msp] for msp in sorted(org_policies))
        return ResolvedImplicitMeta(
            meta=self,
            org_policies=ordered,
            node=NOutOf(n=self.threshold(len(ordered)), children=ordered),
        )

    def __str__(self) -> str:
        return f"{self.rule} {self.sub_policy}"


@dataclass(frozen=True)
class ResolvedImplicitMeta:
    """An implicitMeta policy resolved against a concrete channel."""

    meta: ImplicitMetaPolicy
    org_policies: tuple[PolicyNode, ...]
    node: NOutOf

    def evaluate(self, signers: Sequence[Certificate], matcher: PrincipalMatcher) -> bool:
        return self.node.evaluate(signers, matcher)


def parse_implicit_meta(text: str) -> ImplicitMetaPolicy:
    """Parse ``"MAJORITY Endorsement"``-style text."""
    match = _IMPLICIT_RE.match(text)
    if match is None:
        raise PolicyError(f"not an implicitMeta policy: {text!r}")
    return ImplicitMetaPolicy(rule=match.group(1).upper(), sub_policy=match.group(2))


def is_implicit_meta(text: str) -> bool:
    """Whether ``text`` uses the implicitMeta grammar."""
    return _IMPLICIT_RE.match(text) is not None
