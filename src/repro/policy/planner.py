"""Policy-aware endorsement planning (the Fabric Gateway's "endorsement plan").

The real Fabric Gateway service computes a *plan* from the chaincode's
endorsement policy: a minimal set of endorsing organizations whose
signatures will satisfy the policy, plus an ordered list of alternates to
escalate to when a member of the plan fails, times out, or is down.  This
module reproduces that planning step on top of the existing
:mod:`repro.policy` evaluation machinery:

* :func:`plan_endorsement` — split an ordered candidate pool into the
  minimal *primary* prefix whose certificates satisfy the (chaincode-level)
  policy and the remaining *backups* used for escalation.  When no prefix —
  and therefore, by monotonicity, no subset — satisfies the policy, the
  plan degenerates to "contact everyone" with ``satisfiable=False``, which
  preserves the legacy endorse-everywhere semantics the paper's attack
  probes rely on (a non-satisfying set must still be submittable so the
  validator can reject it).
* :func:`applied_policies_satisfied` — the early-quorum completion test.
  Planning happens *before* simulation, so the initial wave is sized from
  the chaincode-level policy alone; once the first proposal response is in
  hand its read/write set reveals exactly which policies validation will
  apply (collection-level write/read policies, the Feature 1 non-member
  filter), and this predicate re-checks the collected certificates against
  those — the same spec-level oracle the simulation invariants hold the
  validator to.  A quorum accepted here therefore commits ``VALID`` iff the
  full candidate set would have: policy evaluation is monotone in the
  signer set, so certificates can only ever help, never hurt.

Key-level ("state-based") endorsement policies are the one blind spot:
they live in committed metadata the client cannot see, exactly as in
Fabric's gateway.  Transactions governed by them should be submitted with
an explicit endorser set and no plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.identity.identity import Certificate

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.defense.features import FrameworkFeatures
    from repro.network.channel import ChannelConfig
    from repro.policy.evaluator import AnyPolicy, PolicyEvaluator
    from repro.protocol.response import ProposalResponsePayload


@dataclass(frozen=True)
class EndorsementPlan:
    """An ordered endorsement plan: opening wave plus escalation backups.

    ``primary`` and ``backups`` hold whatever candidate objects the caller
    planned over (anything with a ``certificate`` attribute — peers, in
    practice); ``satisfiable`` records whether even the full pool can
    satisfy the planning policy.
    """

    primary: tuple
    backups: tuple
    satisfiable: bool

    @property
    def candidates(self) -> tuple:
        return self.primary + self.backups

    @property
    def size(self) -> int:
        return len(self.primary) + len(self.backups)


def plan_endorsement(
    evaluator: "PolicyEvaluator",
    policy: "AnyPolicy | str",
    candidates: Sequence,
) -> EndorsementPlan:
    """Plan over ``candidates`` (ordered): minimal satisfying prefix + rest.

    Grows the prefix one candidate at a time until the accumulated
    certificates satisfy ``policy`` — the same incremental construction the
    workload generator and the §IV-A attack helpers use.  Candidate order
    is the caller's preference order and is preserved, so planning is
    deterministic for a deterministic pool.
    """
    pool = list(candidates)
    certs: list[Certificate] = []
    for index, candidate in enumerate(pool):
        certs.append(candidate.certificate)
        if evaluator.evaluate(policy, certs):
            return EndorsementPlan(
                primary=tuple(pool[: index + 1]),
                backups=tuple(pool[index + 1:]),
                satisfiable=True,
            )
    return EndorsementPlan(primary=tuple(pool), backups=(), satisfiable=False)


def applied_policies_satisfied(
    channel: "ChannelConfig",
    features: "FrameworkFeatures",
    chaincode_id: str,
    certs: Sequence[Certificate],
    payload: "ProposalResponsePayload",
) -> bool:
    """Whether ``certs`` satisfy every policy validation will apply.

    Derives the policy-selection inputs (read-only, public writes,
    collections written/touched) from a proposal response's read/write set
    and defers to the spec-level oracle, so the client-side quorum test and
    the validator cannot drift apart.
    """
    from repro.core.attacks.ops import expected_policy_ok

    results = payload.results
    collections_written = tuple(sorted({
        col.collection
        for ns in results.namespaces
        for col in ns.collections
        if col.hashed_writes
    }))
    collections_touched = tuple(sorted({
        name for _ns, name in results.collections_touched()
    }))
    has_public_writes = any(
        ns.writes or ns.metadata_writes for ns in results.namespaces
    )
    return expected_policy_ok(
        channel,
        features,
        chaincode_id,
        list(certs),
        read_only=results.is_read_only,
        has_public_writes=has_public_writes,
        collections_written=collections_written,
        collections_touched=collections_touched,
    )
