"""Signature and implicitMeta policies: AST, parser, evaluation."""

from repro.policy.ast import NOutOf, PolicyNode, Principal, and_, or_, out_of
from repro.policy.evaluator import AnyPolicy, PolicyEvaluator
from repro.policy.implicit_meta import (
    ImplicitMetaPolicy,
    ResolvedImplicitMeta,
    is_implicit_meta,
    majority_threshold,
    parse_implicit_meta,
)
from repro.policy.parser import parse_policy

__all__ = [
    "NOutOf",
    "PolicyNode",
    "Principal",
    "and_",
    "or_",
    "out_of",
    "AnyPolicy",
    "PolicyEvaluator",
    "ImplicitMetaPolicy",
    "ResolvedImplicitMeta",
    "is_implicit_meta",
    "majority_threshold",
    "parse_implicit_meta",
    "parse_policy",
]
