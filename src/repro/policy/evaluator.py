"""Policy evaluation against signer sets, backed by MSP validation.

The :class:`PolicyEvaluator` is what a peer's validation system plugin
(VSCC) uses: given the certificates that produced *valid* signatures over
a transaction's response payload, decide whether the endorsement policy is
satisfied.  Certificate genuineness is checked through the MSP registry,
so forged certificates never satisfy a principal.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

from repro.common.errors import PolicyError, PolicyNotSatisfiedError
from repro.identity.identity import Certificate
from repro.identity.msp import MSPRegistry
from repro.identity.roles import Role
from repro.policy.ast import PolicyNode
from repro.policy.implicit_meta import (
    ImplicitMetaPolicy,
    ResolvedImplicitMeta,
    is_implicit_meta,
    parse_implicit_meta,
)
from repro.policy.parser import parse_policy

AnyPolicy = Union[PolicyNode, ImplicitMetaPolicy, ResolvedImplicitMeta]


class PolicyEvaluator:
    """Evaluates signature and implicitMeta policies for one channel."""

    def __init__(self, msp_registry: MSPRegistry, org_sub_policies: Mapping[str, PolicyNode]) -> None:
        """``org_sub_policies`` maps msp_id -> that org's "Endorsement" policy."""
        self._msp = msp_registry
        self._org_sub_policies = dict(org_sub_policies)
        # Policy texts repeat for every transaction; parsing/resolution is
        # pure, so memoise it (channel config is immutable per evaluator).
        self._resolve_cache: dict[str, Union[PolicyNode, ResolvedImplicitMeta]] = {}

    def _matcher(self, certificate: Certificate, msp_id: str, role: Role) -> bool:
        return self._msp.satisfies_principal(certificate, msp_id, role)

    def resolve(self, policy: AnyPolicy | str) -> Union[PolicyNode, ResolvedImplicitMeta]:
        """Turn any accepted policy form into an evaluable one.

        Strings are parsed as implicitMeta when they match that grammar
        (``"MAJORITY Endorsement"``), otherwise as signature policies.
        """
        if isinstance(policy, str):
            cached = self._resolve_cache.get(policy)
            if cached is not None:
                return cached
            text = policy
            parsed = (
                parse_implicit_meta(text) if is_implicit_meta(text) else parse_policy(text)
            )
            resolved = self.resolve(parsed)
            self._resolve_cache[text] = resolved
            return resolved
        if isinstance(policy, ImplicitMetaPolicy):
            return policy.resolve(self._org_sub_policies)
        if isinstance(policy, (ResolvedImplicitMeta, PolicyNode)):
            return policy
        raise PolicyError(f"unsupported policy object {policy!r}")

    def evaluate(self, policy: AnyPolicy | str, signers: Sequence[Certificate]) -> bool:
        """Whether ``signers`` satisfy ``policy``."""
        resolved = self.resolve(policy)
        return resolved.evaluate(signers, self._matcher)

    def assert_satisfied(self, policy: AnyPolicy | str, signers: Sequence[Certificate]) -> None:
        """Raise :class:`PolicyNotSatisfiedError` unless ``signers`` satisfy the policy."""
        if not self.evaluate(policy, signers):
            names = sorted(f"{c.msp_id}/{c.enrollment_id}" for c in signers)
            raise PolicyNotSatisfiedError(
                f"policy not satisfied by signers {names}"
            )
