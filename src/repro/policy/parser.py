"""Parser for the textual signature-policy grammar.

Accepts the syntax used throughout Fabric documentation, collection
configuration files, and the paper itself::

    AND('Org1MSP.peer', 'Org2MSP.peer')
    OR(Org1.member, AND(Org2.peer, Org3.peer))
    OutOf(2, 'Org1.peer', 'Org2.peer', 'Org3.peer')

Quotes around principals are optional; nesting is arbitrary.  The paper's
``2OutOf(...)`` spelling for "2 out of the listed principals" is accepted
as a synonym for ``OutOf(2, ...)``.
"""

from __future__ import annotations

import re

from repro.common.errors import PolicyError
from repro.identity.roles import Role
from repro.policy.ast import NOutOf, PolicyNode, Principal

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<comma>,)
      | (?P<quoted>'[^']*'|"[^"]*")
      | (?P<word>[A-Za-z0-9_.\-]+)
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            raise PolicyError(f"unexpected character at {pos} in policy {text!r}")
        pos = match.end()
        for group in ("lparen", "rparen", "comma", "quoted", "word"):
            value = match.group(group)
            if value is not None:
                if group == "quoted":
                    value = value[1:-1]
                tokens.append(value)
                break
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> str | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise PolicyError(f"unexpected end of policy {self.text!r}")
        self.index += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise PolicyError(f"expected {token!r} but found {got!r} in {self.text!r}")

    def parse(self) -> PolicyNode:
        node = self.parse_expr()
        if self.peek() is not None:
            raise PolicyError(f"trailing tokens after policy expression in {self.text!r}")
        return node

    def parse_expr(self) -> PolicyNode:
        head = self.next()
        n_out_of = re.fullmatch(r"(\d+)OutOf", head, re.IGNORECASE)
        if self.peek() == "(":
            if head.upper() in ("AND", "OR", "OUTOF", "NOUTOF") or n_out_of:
                return self.parse_combinator(head, n_out_of)
            raise PolicyError(f"unknown combinator {head!r} in {self.text!r}")
        return self.parse_principal(head)

    def parse_combinator(self, head: str, n_out_of: re.Match | None) -> PolicyNode:
        self.expect("(")
        threshold: int | None = int(n_out_of.group(1)) if n_out_of else None
        spelling = head.upper() if head.upper() in ("AND", "OR") else "OutOf"
        if head.upper() in ("OUTOF", "NOUTOF"):
            count = self.next()
            if not count.isdigit():
                raise PolicyError(f"OutOf needs a leading integer, found {count!r}")
            threshold = int(count)
            self.expect(",")
        children: list[PolicyNode] = [self.parse_expr()]
        while self.peek() == ",":
            self.next()
            children.append(self.parse_expr())
        self.expect(")")
        if spelling == "AND":
            threshold = len(children)
        elif spelling == "OR":
            threshold = 1
        assert threshold is not None
        if threshold > len(children):
            raise PolicyError(
                f"threshold {threshold} exceeds {len(children)} sub-policies in {self.text!r}"
            )
        return NOutOf(n=threshold, children=tuple(children), spelling=spelling)

    def parse_principal(self, token: str) -> Principal:
        if "." not in token:
            raise PolicyError(f"principal {token!r} must look like 'MspId.role'")
        msp_id, _, role_text = token.rpartition(".")
        try:
            role = Role(role_text.lower())
        except ValueError:
            raise PolicyError(f"unknown role {role_text!r} in principal {token!r}") from None
        return Principal(msp_id=msp_id, role=role)


def parse_policy(text: str) -> PolicyNode:
    """Parse a textual signature policy into an AST.

    Raises :class:`~repro.common.errors.PolicyError` on malformed input.
    """
    stripped = text.strip()
    if not stripped:
        raise PolicyError("empty policy expression")
    return _Parser(stripped).parse()
