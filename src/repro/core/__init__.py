"""The paper's contribution: attacks, defenses, analyzer, corpus, study."""
