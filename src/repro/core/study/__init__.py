"""The GitHub study: analyzer results aggregated into Figs 7-10."""

from repro.core.study.aggregate import StudyResults, aggregate, run_study

__all__ = ["StudyResults", "aggregate", "run_study"]
