"""Aggregation of analyzer results into the paper's study figures.

Turns a list of per-project analyses into exactly the quantities Section
V-C2 reports: the year histogram (Fig. 7), the PDC definition-type split
(Fig. 8), the endorsement-policy split of explicit PDC projects (Fig. 9),
the configtx MAJORITY popularity, and the leakage breakdown (Fig. 10).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.analyzer.report import ProjectAnalysis


@dataclass
class StudyResults:
    """All aggregate statistics of the GitHub study."""

    total_projects: int = 0
    projects_by_year: dict = field(default_factory=dict)
    pdc_by_year: dict = field(default_factory=dict)

    explicit_count: int = 0
    implicit_count: int = 0
    both_count: int = 0

    collection_policy_count: int = 0
    chaincode_level_count: int = 0

    configtx_found: int = 0
    configtx_majority: int = 0

    read_leak_count: int = 0
    write_leak_count: int = 0
    leak_any_count: int = 0

    # -- derived -------------------------------------------------------------
    @property
    def pdc_union_count(self) -> int:
        return self.explicit_count + self.implicit_count - self.both_count

    @property
    def explicit_only_count(self) -> int:
        return self.explicit_count - self.both_count

    @property
    def implicit_only_count(self) -> int:
        return self.implicit_count - self.both_count

    @property
    def injection_vulnerable_pct(self) -> float:
        """Fig. 9 headline: % of explicit projects on the chaincode-level policy."""
        if not self.explicit_count:
            return 0.0
        return 100.0 * self.chaincode_level_count / self.explicit_count

    @property
    def leakage_pct(self) -> float:
        """Fig. 10 headline: % of explicit projects with a PDC leak."""
        if not self.explicit_count:
            return 0.0
        return 100.0 * self.leak_any_count / self.explicit_count

    @property
    def explicit_only_pct(self) -> float:
        if not self.pdc_union_count:
            return 0.0
        return 100.0 * self.explicit_only_count / self.pdc_union_count

    @property
    def both_pct(self) -> float:
        if not self.pdc_union_count:
            return 0.0
        return 100.0 * self.both_count / self.pdc_union_count

    @property
    def implicit_only_pct(self) -> float:
        if not self.pdc_union_count:
            return 0.0
        return 100.0 * self.implicit_only_count / self.pdc_union_count

    # -- rendering ---------------------------------------------------------------
    def render_fig7(self) -> str:
        lines = ["Fig. 7 — Projects across years (measured)"]
        lines.append(f"{'year':>6} {'projects':>10} {'pdc':>6}")
        for year in sorted(self.projects_by_year):
            lines.append(
                f"{year:>6} {self.projects_by_year[year]:>10} "
                f"{self.pdc_by_year.get(year, 0):>6}"
            )
        lines.append(f"{'total':>6} {self.total_projects:>10} {self.pdc_union_count:>6}")
        return "\n".join(lines)

    def render_fig8(self) -> str:
        return "\n".join(
            [
                "Fig. 8 — PDC definition types (measured)",
                f"explicit-only : {self.explicit_only_count:>4} ({self.explicit_only_pct:.2f}%)",
                f"both          : {self.both_count:>4} ({self.both_pct:.2f}%)",
                f"implicit-only : {self.implicit_only_count:>4} ({self.implicit_only_pct:.2f}%)",
                f"explicit total: {self.explicit_count:>4}   implicit total: {self.implicit_count}",
            ]
        )

    def render_fig9(self) -> str:
        return "\n".join(
            [
                "Fig. 9 — Endorsement policy of explicit PDC projects (measured)",
                f"chaincode-level : {self.chaincode_level_count:>4} "
                f"({self.injection_vulnerable_pct:.2f}%)  <- vulnerable to injection",
                f"collection-level: {self.collection_policy_count:>4} "
                f"({100 - self.injection_vulnerable_pct:.2f}%)",
                f"configtx.yaml found: {self.configtx_found}, "
                f"MAJORITY Endorsement: {self.configtx_majority}",
            ]
        )

    def render_fig10(self) -> str:
        return "\n".join(
            [
                "Fig. 10 — PDC leakage issues among explicit PDC projects (measured)",
                f"read-leak  : {self.read_leak_count:>4}",
                f"write-leak : {self.write_leak_count:>4} (all also read-leaky)",
                f"any leak   : {self.leak_any_count:>4} ({self.leakage_pct:.2f}%)",
            ]
        )

    def render_all(self) -> str:
        return "\n\n".join(
            [self.render_fig7(), self.render_fig8(), self.render_fig9(), self.render_fig10()]
        )


def aggregate(analyses: Iterable[ProjectAnalysis]) -> StudyResults:
    """Fold per-project analyses into study statistics."""
    results = StudyResults()
    years: Counter = Counter()
    pdc_years: Counter = Counter()
    for analysis in analyses:
        results.total_projects += 1
        if analysis.year is not None:
            years[analysis.year] += 1
            if analysis.is_pdc:
                pdc_years[analysis.year] += 1
        if analysis.is_explicit_pdc:
            results.explicit_count += 1
            if analysis.has_collection_level_policy:
                results.collection_policy_count += 1
            else:
                results.chaincode_level_count += 1
                if analysis.configtx:
                    results.configtx_found += 1
                    if analysis.configtx_is_majority:
                        results.configtx_majority += 1
            if analysis.has_read_leak:
                results.read_leak_count += 1
            if analysis.has_write_leak:
                results.write_leak_count += 1
            if analysis.has_leak:
                results.leak_any_count += 1
        if analysis.is_implicit_pdc:
            results.implicit_count += 1
        if analysis.is_explicit_pdc and analysis.is_implicit_pdc:
            results.both_count += 1
    results.projects_by_year = dict(sorted(years.items()))
    results.pdc_by_year = dict(sorted(pdc_years.items()))
    return results


def run_study(projects: Iterable) -> StudyResults:
    """Convenience: analyze every project, then aggregate."""
    from repro.core.analyzer.scanner import analyze_corpus

    return aggregate(analyze_corpus(projects))
