"""Framework feature flags: the paper's defense switches (Section IV-C).

The defenses are *framework modifications*, not application code: the
paper implements them by patching the Fabric source.  Here they are
compile-time flags every peer (and the client gateway, for Feature 2) is
constructed with:

* ``collection_policy_on_reads`` — **New Feature 1**: during validation,
  PDC read-only transactions are also checked against the collection-level
  endorsement policy (when one is defined), closing the fake-read hole.
* ``hashed_payload_endorsement`` — **New Feature 2** (Fig. 4): endorsers
  sign the proposal-response with a SHA-256-hashed ``payload`` and return
  the original out-of-band; clients verify and assemble the hashed
  variant, so transactions never carry plaintext PDC values.
* ``filter_nonmember_endorsements`` — the supplemental feature of §V-D:
  during validation of PDC transactions, endorsements from PDC non-member
  organizations are discarded before policy evaluation, protecting sloppy
  deployments whose policies would otherwise accept them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FrameworkFeatures:
    """Which framework behaviours are active on a node."""

    collection_policy_on_reads: bool = False  # New Feature 1
    hashed_payload_endorsement: bool = False  # New Feature 2
    filter_nonmember_endorsements: bool = False  # supplemental feature

    @classmethod
    def original(cls) -> "FrameworkFeatures":
        """The unmodified Fabric framework (all defenses off)."""
        return cls()

    @classmethod
    def defended(cls) -> "FrameworkFeatures":
        """All defenses of the paper enabled."""
        return cls(
            collection_policy_on_reads=True,
            hashed_payload_endorsement=True,
            filter_nonmember_endorsements=True,
        )

    @classmethod
    def feature1_only(cls) -> "FrameworkFeatures":
        return cls(collection_policy_on_reads=True)

    @classmethod
    def feature2_only(cls) -> "FrameworkFeatures":
        return cls(hashed_payload_endorsement=True)

    def with_(self, **changes: bool) -> "FrameworkFeatures":
        return replace(self, **changes)

    def describe(self) -> str:
        active = [
            name
            for name, on in (
                ("Feature1(collection-policy-on-reads)", self.collection_policy_on_reads),
                ("Feature2(hashed-payload)", self.hashed_payload_endorsement),
                ("NonMemberFilter", self.filter_nonmember_endorsements),
            )
            if on
        ]
        return "original framework" if not active else "modified framework: " + ", ".join(active)
