"""Defenses of Section IV-C: framework flags + the deployment advisor."""

from repro.core.defense.advisor import AdvisoryReport, Finding, Severity, advise
from repro.core.defense.features import FrameworkFeatures

__all__ = ["AdvisoryReport", "Finding", "Severity", "advise", "FrameworkFeatures"]
