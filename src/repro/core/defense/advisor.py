"""Deployment advisor: the paper's §IV-C guidance as an executable audit.

Given a channel configuration (and optionally the framework features in
use), produce the findings a security review along the paper's lines
would raise:

* **PDC-W1** — a collection with no collection-level ``EndorsementPolicy``
  while the chaincode-level policy is implicitMeta: the fake write /
  read-write / delete injections of §IV-A apply.
* **PDC-R1** — PDC read-only transactions validated against the
  chaincode-level policy (always true without New Feature 1): fake read
  injection applies even when a collection-level policy exists.
* **PDC-C1** — the collusion threshold: how many orgs must collude, and
  whether non-members alone suffice (§IV-A5).
* **PDC-L1** — the plaintext ``payload``/event fields (Use Case 3): any
  submitted PDC read, or write that echoes values, leaks without New
  Feature 2.
* **PDC-M1** — ``memberOnlyRead``/``memberOnlyWrite`` disabled: PDC
  non-member peers can endorse private-data operations (Use Case 1).

Each finding carries the mitigations the paper proposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.attacks.collusion import CollusionReport, analyze_collusion
from repro.core.defense.features import FrameworkFeatures
from repro.network.channel import ChannelConfig
from repro.policy.implicit_meta import is_implicit_meta


class Severity(str, enum.Enum):
    HIGH = "HIGH"
    MEDIUM = "MEDIUM"
    INFO = "INFO"


@dataclass(frozen=True)
class Finding:
    """One audit finding."""

    code: str
    severity: Severity
    chaincode_id: str
    collection: Optional[str]
    title: str
    explanation: str
    mitigation: str

    def __str__(self) -> str:
        where = f"{self.chaincode_id}" + (f"/{self.collection}" if self.collection else "")
        return f"[{self.severity.value:<6}] {self.code} {where}: {self.title}"


@dataclass
class AdvisoryReport:
    """All findings for one channel."""

    channel_id: str
    features: FrameworkFeatures
    findings: list = field(default_factory=list)
    collusion: dict = field(default_factory=dict)  # (cc, col) -> CollusionReport

    def by_severity(self, severity: Severity) -> list:
        return [f for f in self.findings if f.severity is severity]

    @property
    def worst(self) -> Optional[Severity]:
        for severity in (Severity.HIGH, Severity.MEDIUM, Severity.INFO):
            if self.by_severity(severity):
                return severity
        return None

    def render(self) -> str:
        lines = [
            f"Security advisory for channel {self.channel_id!r} "
            f"({self.features.describe()})",
            f"{len(self.findings)} finding(s)"
            + (f", worst severity {self.worst.value}" if self.worst else ""),
            "",
        ]
        for finding in self.findings:
            lines.append(str(finding))
            lines.append(f"         why: {finding.explanation}")
            lines.append(f"         fix: {finding.mitigation}")
        for (cc, col), report in sorted(self.collusion.items()):
            lines.append("")
            lines.append(report.summary())
        return "\n".join(lines)


def advise(
    channel: ChannelConfig, features: FrameworkFeatures | None = None
) -> AdvisoryReport:
    """Audit every chaincode + collection on the channel."""
    features = features or FrameworkFeatures.original()
    report = AdvisoryReport(channel_id=channel.channel_id, features=features)

    for name, definition in sorted(channel.chaincodes.items()):
        implicit = is_implicit_meta(definition.endorsement_policy)
        for collection in definition.collections:
            where = dict(chaincode_id=name, collection=collection.name)

            if collection.endorsement_policy is None and implicit:
                report.findings.append(
                    Finding(
                        code="PDC-W1",
                        severity=Severity.HIGH,
                        title="write/delete injection possible",
                        explanation=(
                            f"no collection-level EndorsementPolicy; write-related "
                            f"transactions validate against the implicitMeta "
                            f"chaincode policy {definition.endorsement_policy!r}, "
                            "which PDC non-member endorsements can satisfy (§IV-A2..4)"
                        ),
                        mitigation=(
                            "define a collection-level EndorsementPolicy naming the "
                            "member orgs, e.g. AND over the collection members"
                        ),
                        **where,
                    )
                )

            if not features.collection_policy_on_reads:
                report.findings.append(
                    Finding(
                        code="PDC-R1",
                        severity=Severity.HIGH,
                        title="fake read result injection possible",
                        explanation=(
                            "read-only PDC transactions are validated against the "
                            "chaincode-level policy only; colluding endorsers can "
                            "forge payloads using GetPrivateDataHash versions (§IV-A1)"
                            + (
                                " — the collection-level policy does NOT protect reads"
                                if collection.endorsement_policy is not None
                                else ""
                            )
                        ),
                        mitigation=(
                            "enable New Feature 1 (collection-level policy check for "
                            "PDC read transactions during validation)"
                        ),
                        **where,
                    )
                )

            if not features.hashed_payload_endorsement:
                report.findings.append(
                    Finding(
                        code="PDC-L1",
                        severity=Severity.MEDIUM,
                        title="plaintext payload/event leakage on submitted transactions",
                        explanation=(
                            "the proposal-response payload (and any chaincode event) "
                            "is committed in plaintext at every peer; submitted PDC "
                            "reads or echoing writes reveal the value to non-members "
                            "(§IV-B, Use Case 3)"
                        ),
                        mitigation=(
                            "enable New Feature 2 (endorse the hashed payload, Fig. 4) "
                            "and never return private values from submitted functions"
                        ),
                        **where,
                    )
                )

            if not collection.member_only_read or not collection.member_only_write:
                missing = [
                    flag
                    for flag, on in (
                        ("memberOnlyRead", collection.member_only_read),
                        ("memberOnlyWrite", collection.member_only_write),
                    )
                    if not on
                ]
                report.findings.append(
                    Finding(
                        code="PDC-M1",
                        severity=Severity.MEDIUM,
                        title=f"{' and '.join(missing)} disabled",
                        explanation=(
                            "PDC non-member peers can endorse private-data "
                            "operations (write/delete always; Use Case 1)"
                        ),
                        mitigation=(
                            "set memberOnlyRead/memberOnlyWrite, or enable the "
                            "supplemental non-member endorsement filter"
                        ),
                        **where,
                    )
                )

            collusion = analyze_collusion(channel, name, collection.name)
            report.collusion[(name, collection.name)] = collusion
            if collusion.nonmember_only_possible:
                report.findings.append(
                    Finding(
                        code="PDC-C1",
                        severity=Severity.HIGH,
                        title=(
                            f"{collusion.minimum_nonmember_orgs} non-member org(s) "
                            "can satisfy the chaincode policy alone"
                        ),
                        explanation=(
                            f"policy {definition.endorsement_policy!r} is satisfiable "
                            f"by {sorted(collusion.minimum_nonmember_set)} — the §IV-A5 "
                            "NOutOf scenario: attacks need zero insider collusion"
                        ),
                        mitigation=(
                            "restrict the chaincode policy (or add collection-level "
                            "policies + New Feature 1) so non-members alone can "
                            "never endorse PDC transactions"
                        ),
                        **where,
                    )
                )
    return report
