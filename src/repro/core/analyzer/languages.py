"""Language-aware leakage heuristics for chaincode (Go, JS/TS, Java).

Implements the per-function analysis behind the paper's §V-C "Generality
of PDC leakage issues": a chaincode function leaks private data when it

* **read-leak** — calls ``GetPrivateData`` and *returns* the fetched value
  (directly or through derived variables), sending it into the plaintext
  ``payload`` field of the proposal response (Listing 1); or
* **write-leak** — calls ``PutPrivateData`` and returns the written value
  (e.g. ``return args[1], nil`` in Listing 2).

The analysis extracts function bodies by brace matching, seeds a small
taint set (variables assigned from ``GetPrivateData`` / the value argument
of ``PutPrivateData``), propagates taint through straight-line
assignments, and flags functions whose ``return`` statements (or Go
``shim.Success(...)`` payloads) mention a tainted expression.  Calls to
``GetPrivateDataHash`` never taint — returning a hash is the safe pattern.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.analyzer.source import ProjectFile

_GO_FUNC_RE = re.compile(r"\bfunc\s+(?:\([^)]*\)\s*)?(?P<name>[A-Za-z_]\w*)\s*\([^)]*\)[^{]*\{")
_JS_FUNC_RE = re.compile(
    r"(?:\basync\s+)?(?:\bfunction\s+)?(?P<name>[A-Za-z_$][\w$]*)\s*\([^)]*\)\s*\{"
)
_JAVA_FUNC_RE = re.compile(
    r"(?:public|private|protected)\s+(?:static\s+)?[\w<>\[\],\s]+?\s(?P<name>[A-Za-z_]\w*)\s*\([^)]*\)\s*(?:throws[\w\s,]*)?\{"
)

_JS_KEYWORDS = {"if", "for", "while", "switch", "catch", "function", "return"}

# Access expressions: identifiers with optional member / index suffixes,
# e.g. ``asset``, ``args[1]``, ``resp.payload``.
_ACCESS_RE = re.compile(r"[A-Za-z_$][\w$]*(?:\s*\[\s*[^\]]+\s*\]|\.[A-Za-z_$][\w$]*)*")

_GET_PRIVATE_RE = re.compile(r"\bGetPrivateData\s*\(", re.IGNORECASE)
_GET_PRIVATE_HASH_RE = re.compile(r"\bGetPrivateDataHash\s*\(", re.IGNORECASE)
_PUT_PRIVATE_RE = re.compile(r"\bPutPrivateData\s*\(", re.IGNORECASE)


@dataclass(frozen=True)
class FunctionInfo:
    """One extracted chaincode function."""

    name: str
    body: str
    language: str


def _language_of(file: ProjectFile) -> str | None:
    return {".go": "go", ".js": "js", ".ts": "js", ".java": "java"}.get(file.extension)


def extract_functions(file: ProjectFile) -> list[FunctionInfo]:
    """Extract named function bodies via header regex + brace matching."""
    language = _language_of(file)
    if language is None:
        return []
    pattern = {"go": _GO_FUNC_RE, "js": _JS_FUNC_RE, "java": _JAVA_FUNC_RE}[language]
    functions = []
    for match in pattern.finditer(file.content):
        name = match.group("name")
        if language == "js" and name in _JS_KEYWORDS:
            continue
        body = _matched_braces(file.content, match.end() - 1)
        if body is not None:
            functions.append(FunctionInfo(name=name, body=body, language=language))
    return functions


def _matched_braces(text: str, open_index: int) -> str | None:
    """The text between the brace at ``open_index`` and its partner."""
    depth = 0
    in_string: str | None = None
    index = open_index
    while index < len(text):
        ch = text[index]
        if in_string:
            if ch == "\\":
                index += 2
                continue
            if ch == in_string:
                in_string = None
        elif ch in "'\"`":
            in_string = ch
        elif ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return text[open_index + 1 : index]
        index += 1
    return None


def _normalize(expr: str) -> str:
    return re.sub(r"\s+", "", expr)


_STRING_LITERAL_RE = re.compile(r"'[^']*'|\"[^\"]*\"|`[^`]*`")


def _accesses_in(expr: str) -> set[str]:
    # Words inside string literals are not variable accesses — an error
    # message mentioning "asset" must not count as a use of `asset`.
    stripped = _STRING_LITERAL_RE.sub("''", expr)
    return {_normalize(m.group(0)) for m in _ACCESS_RE.finditer(stripped)}


def _root_of(access: str) -> str:
    return re.split(r"[.\[]", access, 1)[0]


def _call_arguments(body: str, call_match: re.Match) -> list[str]:
    """Split the argument list of a call, respecting nesting."""
    depth = 1
    start = call_match.end()
    args, current = [], []
    index = start
    while index < len(body) and depth > 0:
        ch = body[index]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                break
        if ch == "," and depth == 1:
            args.append("".join(current))
            current = []
        else:
            current.append(ch)
        index += 1
    if current:
        args.append("".join(current))
    return [a.strip() for a in args if a.strip()]


def _assignment_targets(line: str) -> tuple[list[str], str] | None:
    """Parse ``lhs = rhs`` / ``lhs := rhs`` / ``const lhs = rhs`` lines.

    Typed declarations (``byte[] data = ...``, ``final String s = ...``)
    contribute only the declared *name* (the last identifier of each
    comma-separated part); Go's ``_`` and error results never taint.
    """
    stripped = line.strip()
    stripped = re.sub(r"^(?:const|let|var|final)\s+", "", stripped)
    match = re.match(r"^([\w$.,\s\[\]<>]+?)\s*:?=\s*(?![=])(.+)$", stripped)
    if match is None:
        return None
    lhs, rhs = match.group(1), match.group(2)
    targets = []
    for part in lhs.split(","):
        tokens = [m.group(0) for m in _ACCESS_RE.finditer(part)]
        if not tokens:
            continue
        name = _normalize(tokens[-1])
        if name in ("_", "err", "error"):
            continue
        targets.append(name)
    return (targets, rhs) if targets else None


def _is_tainted(access: str, tainted: set[str]) -> bool:
    """An access is tainted exactly, or through its root variable.

    ``args[1]`` in the taint set does NOT taint ``args[0]`` — only the
    precise access or derivations of a tainted *bare* variable count,
    which keeps error paths like ``return "", fmt.Errorf(..., args[0])``
    from false-positiving write-leak detection.
    """
    return access in tainted or _root_of(access) in tainted


def _tainted_returns(body: str, seeds: set[str], language: str) -> bool:
    """Propagate taint through assignments; check return statements."""
    tainted = set(seeds)
    # Two propagation passes handle simple forward chains (a = get(); b =
    # parse(a); return b) without needing a full dataflow fixpoint.
    for _ in range(2):
        for line in body.splitlines():
            parsed = _assignment_targets(line)
            if parsed is None:
                continue
            targets, rhs = parsed
            if any(_is_tainted(a, tainted) for a in _accesses_in(rhs)):
                tainted.update(targets)

    for line in body.splitlines():
        stripped = line.strip()
        return_match = re.match(r"^return\b(.*)$", stripped)
        if return_match is None:
            continue
        expr = return_match.group(1).strip().rstrip(";")
        if not expr:
            continue
        if language == "go":
            # ``return "", err`` / ``return nil, err`` are error paths.
            expr = ",".join(
                part for part in expr.split(",") if part.strip() not in ("nil", "err", "''", '""')
            )
        if any(_is_tainted(a, tainted) for a in _accesses_in(expr)):
            return True
    # Go chaincode often responds via shim.Success(payload) instead of a
    # plain return value.
    for match in re.finditer(r"shim\.Success\s*\(", body):
        for arg in _call_arguments(body, match):
            if any(_is_tainted(a, tainted) for a in _accesses_in(arg)):
                return True
    return False


def find_read_leaks(file: ProjectFile) -> list[str]:
    """Functions that return data obtained from ``GetPrivateData``."""
    leaks = []
    for function in extract_functions(file):
        body = function.body
        if not _GET_PRIVATE_RE.search(_GET_PRIVATE_HASH_RE.sub("ignored(", body)):
            continue
        seeds: set[str] = set()
        sanitized = _GET_PRIVATE_HASH_RE.sub("ignored(", body)
        for line in sanitized.splitlines():
            if not _GET_PRIVATE_RE.search(line):
                continue
            parsed = _assignment_targets(line)
            if parsed is None:
                continue
            targets, _rhs = parsed
            seeds.update(targets)
        if seeds and _tainted_returns(sanitized, seeds, function.language):
            leaks.append(function.name)
    return leaks


_SET_EVENT_RE = re.compile(r"\bSetEvent\s*\(", re.IGNORECASE)
_GET_TRANSIENT_RE = re.compile(r"\bGetTransient\s*\(", re.IGNORECASE)


def find_transient_bypass(file: ProjectFile) -> list[str]:
    """Write functions that take the private value from plaintext args.

    The proper channel for private input is the *transient* map, which
    never enters the signed proposal or the transaction.  A function that
    passes ``args[...]``-derived data to ``PutPrivateData`` records the
    value in every committed transaction's argument list — Listing 2's
    secondary flaw, which even New Feature 2 cannot repair.
    """
    flagged = []
    for function in extract_functions(file):
        body = function.body
        if _GET_TRANSIENT_RE.search(body):
            continue  # value comes from the transient map: correct pattern
        for match in _PUT_PRIVATE_RE.finditer(body):
            arguments = _call_arguments(body, match)
            value_expr = arguments[2] if len(arguments) >= 3 else (
                arguments[1] if len(arguments) == 2 else ""
            )
            if any(access.startswith("args[") for access in _accesses_in(value_expr)):
                flagged.append(function.name)
                break
    return flagged


def find_event_leaks(file: ProjectFile) -> list[str]:
    """Functions that put ``GetPrivateData`` results into a chaincode event.

    Beyond the paper's payload analysis: events are committed in plaintext
    with the transaction and broadcast to every subscriber, so they leak
    exactly like the ``payload`` field.
    """
    leaks = []
    for function in extract_functions(file):
        sanitized = _GET_PRIVATE_HASH_RE.sub("ignored(", function.body)
        if not _GET_PRIVATE_RE.search(sanitized):
            continue
        seeds: set[str] = set()
        for line in sanitized.splitlines():
            if not _GET_PRIVATE_RE.search(line):
                continue
            parsed = _assignment_targets(line)
            if parsed is not None:
                seeds.update(parsed[0])
        if not seeds:
            continue
        # Propagate, then check SetEvent argument expressions as sinks.
        tainted = set(seeds)
        for _ in range(2):
            for line in sanitized.splitlines():
                parsed = _assignment_targets(line)
                if parsed is None:
                    continue
                targets, rhs = parsed
                if any(_is_tainted(a, tainted) for a in _accesses_in(rhs)):
                    tainted.update(targets)
        for match in _SET_EVENT_RE.finditer(sanitized):
            for arg in _call_arguments(sanitized, match):
                if any(_is_tainted(a, tainted) for a in _accesses_in(arg)):
                    leaks.append(function.name)
                    break
            else:
                continue
            break
    return leaks


def find_write_leaks(file: ProjectFile) -> list[str]:
    """Functions that echo back the value they passed to ``PutPrivateData``."""
    leaks = []
    for function in extract_functions(file):
        body = function.body
        seeds: set[str] = set()
        for match in _PUT_PRIVATE_RE.finditer(body):
            args = _call_arguments(body, match)
            if len(args) >= 3:
                value_expr = args[2]
            elif len(args) == 2:  # JS contract API: putPrivateData(key, value)
                value_expr = args[1]
            else:
                continue
            seeds.update(_accesses_in(value_expr))
        # Conversion wrappers are not data sources.
        seeds -= {"byte", "Buffer", "Buffer.from", "bytes", "String", "JSON.stringify"}
        # A method access like ``value.getBytes`` taints the receiver
        # ``value`` as well; a *subscript* like ``args[1]`` stays exact so
        # ``args[0]`` (the key) is never considered leaked.
        for seed in list(seeds):
            if "." in seed and "[" not in seed:
                seeds.add(_root_of(seed))
        if seeds and _tainted_returns(body, seeds, function.language):
            leaks.append(function.name)
    return leaks
