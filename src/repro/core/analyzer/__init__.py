"""The static analyzer for Fabric projects (Section V-C)."""

from repro.core.analyzer.detectors import (
    CollectionFinding,
    ConfigtxFinding,
    detect_configtx_policy,
    detect_explicit_pdc,
    detect_implicit_pdc,
)
from repro.core.analyzer.languages import (
    extract_functions,
    find_read_leaks,
    find_write_leaks,
)
from repro.core.analyzer.report import ProjectAnalysis
from repro.core.analyzer.scanner import analyze_corpus, analyze_project
from repro.core.analyzer.source import (
    FilesystemProject,
    InMemoryProject,
    ProjectFile,
    discover_projects,
)
from repro.core.analyzer.yaml_lite import extract_endorsement_rule, parse_yaml_lite

__all__ = [
    "CollectionFinding",
    "ConfigtxFinding",
    "detect_configtx_policy",
    "detect_explicit_pdc",
    "detect_implicit_pdc",
    "extract_functions",
    "find_read_leaks",
    "find_write_leaks",
    "ProjectAnalysis",
    "analyze_corpus",
    "analyze_project",
    "FilesystemProject",
    "InMemoryProject",
    "ProjectFile",
    "discover_projects",
    "extract_endorsement_rule",
    "parse_yaml_lite",
]
