"""A dependency-free YAML-subset reader for ``configtx.yaml``.

The analyzer needs exactly one thing from a project's ``configtx.yaml``:
the channel application's default ``Endorsement`` policy rule (§V-C1,
"Popularity of MAJORITY Endorsement policy").  Fabric's configtx files use
a plain mapping/list subset of YAML, which this module parses:

* nested mappings by indentation,
* ``key: value`` scalars with optional quotes,
* block lists of scalars or mappings (``- item`` / ``- key: value``),
* comments (``#``) and blank lines,
* anchors/aliases are tolerated and stripped (``&name`` / ``*name`` and
  ``<<: *name`` merges are recorded as plain string values).

Anything fancier raises :class:`YamlLiteError` — a static scanner should
fail loud on files it cannot understand rather than misreport them.
"""

from __future__ import annotations

import re
from typing import Any, Optional


class YamlLiteError(Exception):
    """The document uses YAML features outside the supported subset."""


_ANCHOR_RE = re.compile(r"&[A-Za-z0-9_-]+\s*")


def _strip_comment(line: str) -> str:
    """Remove a trailing comment, respecting quoted strings."""
    result = []
    quote: Optional[str] = None
    for ch in line:
        if quote:
            result.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            result.append(ch)
            continue
        if ch == "#":
            break
        result.append(ch)
    return "".join(result).rstrip()


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    text = _ANCHOR_RE.sub("", text).strip()
    if not text:
        return None
    if text.startswith(("'", '"')) and text.endswith(text[0]) and len(text) >= 2:
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("null", "~"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


class _Line:
    __slots__ = ("indent", "text")

    def __init__(self, indent: int, text: str) -> None:
        self.indent = indent
        self.text = text


def _logical_lines(document: str) -> list[_Line]:
    lines = []
    for raw in document.splitlines():
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        if stripped.strip() in ("---", "..."):
            continue  # document markers
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlLiteError("tabs in indentation are not supported")
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append(_Line(indent, stripped.strip()))
    return lines


def parse_yaml_lite(document: str) -> Any:
    """Parse a configtx-style YAML document into dicts/lists/scalars."""
    lines = _logical_lines(document)
    if not lines:
        return {}
    value, index = _parse_block(lines, 0, lines[0].indent)
    if index != len(lines):
        raise YamlLiteError(f"trailing content at line {index}")
    return value


def _parse_block(lines: list[_Line], index: int, indent: int):
    if lines[index].text.startswith("- "):
        return _parse_list(lines, index, indent)
    return _parse_mapping(lines, index, indent)


def _parse_list(lines: list[_Line], index: int, indent: int):
    items: list[Any] = []
    while index < len(lines) and lines[index].indent == indent and (
        lines[index].text.startswith("- ") or lines[index].text == "-"
    ):
        item_text = lines[index].text[2:].strip() if lines[index].text != "-" else ""
        # An anchor-only item ("- &Org1") introduces a nested block too.
        item_text = _ANCHOR_RE.sub("", item_text).strip()
        if not item_text:
            # "-" alone: nested block item
            index += 1
            if index >= len(lines) or lines[index].indent <= indent:
                items.append(None)
                continue
            value, index = _parse_block(lines, index, lines[index].indent)
            items.append(value)
            continue
        if ":" in item_text and not item_text.startswith(("'", '"')):
            # "- key: value" — a mapping item; re-parse as a mini mapping
            # whose first line sits at a synthetic deeper indent.
            key, _, rest = item_text.partition(":")
            mapping: dict[str, Any] = {}
            if rest.strip():
                mapping[key.strip()] = _parse_scalar(rest)
                index += 1
            else:
                index += 1
                if index < len(lines) and lines[index].indent > indent + 2:
                    value, index = _parse_block(lines, index, lines[index].indent)
                    mapping[key.strip()] = value
                else:
                    mapping[key.strip()] = None
            # continuation keys of the same list item are indented past "- "
            while index < len(lines) and lines[index].indent == indent + 2:
                sub, index = _parse_mapping_entry(lines, index)
                mapping.update(sub)
            items.append(mapping)
            continue
        items.append(_parse_scalar(item_text))
        index += 1
    return items, index


def _parse_mapping(lines: list[_Line], index: int, indent: int):
    mapping: dict[str, Any] = {}
    while index < len(lines) and lines[index].indent == indent:
        if lines[index].text.startswith("- "):
            break
        entry, index = _parse_mapping_entry(lines, index)
        mapping.update(entry)
    return mapping, index


def _parse_mapping_entry(lines: list[_Line], index: int):
    line = lines[index]
    if ":" not in line.text:
        raise YamlLiteError(f"expected 'key: value', found {line.text!r}")
    key, _, rest = line.text.partition(":")
    key = key.strip().strip("'\"")
    rest = rest.strip()
    if re.fullmatch(r"&[A-Za-z0-9_-]+", rest):
        rest = ""  # "Key: &anchor" introduces the nested block below
    if rest:
        if rest.startswith("*"):
            return {key: rest}, index + 1  # alias: keep as opaque string
        return {key: _parse_scalar(rest)}, index + 1
    index += 1
    if index < len(lines) and lines[index].indent > line.indent:
        value, index = _parse_block(lines, index, lines[index].indent)
        return {key: value}, index
    return {key: None}, index


def find_key_paths(document: Any, key: str) -> list[Any]:
    """All values found under mappings whose key equals ``key`` (recursive)."""
    found: list[Any] = []
    if isinstance(document, dict):
        for k, v in document.items():
            if k == key:
                found.append(v)
            found.extend(find_key_paths(v, key))
    elif isinstance(document, list):
        for item in document:
            found.extend(find_key_paths(item, key))
    return found


def extract_endorsement_rule(configtx_text: str) -> Optional[str]:
    """The channel application's default Endorsement policy rule.

    Returns e.g. ``"MAJORITY Endorsement"`` or ``"ANY Endorsement"`` from::

        Application:
          Policies:
            Endorsement:
              Type: ImplicitMeta
              Rule: "MAJORITY Endorsement"

    Returns ``None`` when no Endorsement policy block is present or the
    file cannot be parsed.
    """
    try:
        doc = parse_yaml_lite(configtx_text)
    except YamlLiteError:
        return None
    # Search the Application section first — that is where the channel's
    # default chaincode endorsement policy lives; per-org "Endorsement"
    # signature sub-policies elsewhere in the file are not the default.
    scopes = find_key_paths(doc, "Application") + [doc]
    fallback: Optional[str] = None
    for scope in scopes:
        for block in find_key_paths(scope, "Endorsement"):
            if not (isinstance(block, dict) and isinstance(block.get("Rule"), str)):
                continue
            if str(block.get("Type", "")).lower() == "implicitmeta":
                return block["Rule"]
            if fallback is None:
                fallback = block["Rule"]
    return fallback
