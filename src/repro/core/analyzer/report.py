"""Per-project analysis results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.analyzer.detectors import CollectionFinding, ConfigtxFinding


@dataclass
class ProjectAnalysis:
    """Everything the analyzer determined about one project."""

    name: str
    year: Optional[int] = None
    collections: list[CollectionFinding] = field(default_factory=list)
    implicit_files: list[str] = field(default_factory=list)
    configtx: list[ConfigtxFinding] = field(default_factory=list)
    read_leak_functions: dict[str, list[str]] = field(default_factory=dict)  # file -> fns
    write_leak_functions: dict[str, list[str]] = field(default_factory=dict)

    # -- PDC classification (Fig. 8) ---------------------------------------
    @property
    def is_explicit_pdc(self) -> bool:
        return bool(self.collections)

    @property
    def is_implicit_pdc(self) -> bool:
        return bool(self.implicit_files)

    @property
    def is_pdc(self) -> bool:
        return self.is_explicit_pdc or self.is_implicit_pdc

    @property
    def pdc_kind(self) -> str:
        if self.is_explicit_pdc and self.is_implicit_pdc:
            return "both"
        if self.is_explicit_pdc:
            return "explicit-only"
        if self.is_implicit_pdc:
            return "implicit-only"
        return "none"

    # -- endorsement policy classification (Fig. 9) -----------------------------
    @property
    def has_collection_level_policy(self) -> bool:
        return any(c.has_endorsement_policy for c in self.collections)

    @property
    def uses_chaincode_level_policy(self) -> bool:
        """Explicit PDC project with no collection-level EndorsementPolicy.

        These are the 86.51% the paper flags as vulnerable to the fake
        PDC results injection attacks.
        """
        return self.is_explicit_pdc and not self.has_collection_level_policy

    @property
    def configtx_rule(self) -> Optional[str]:
        for finding in self.configtx:
            if finding.endorsement_rule:
                return finding.endorsement_rule
        return None

    @property
    def configtx_is_majority(self) -> bool:
        return any(f.is_majority for f in self.configtx)

    # -- leakage classification (Fig. 10) ------------------------------------------
    @property
    def has_read_leak(self) -> bool:
        return any(self.read_leak_functions.values())

    @property
    def has_write_leak(self) -> bool:
        return any(self.write_leak_functions.values())

    @property
    def has_leak(self) -> bool:
        return self.has_read_leak or self.has_write_leak

    @property
    def potentially_vulnerable_to_injection(self) -> bool:
        return self.uses_chaincode_level_policy
