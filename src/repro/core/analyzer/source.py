"""Project sources the static analyzer can scan.

The paper's tool scanned 6392 GitHub repositories.  Offline, the analyzer
accepts two interchangeable source types: directories on disk
(:class:`FilesystemProject`) and synthetic in-memory projects
(:class:`InMemoryProject`, produced by the corpus generator).  Detectors
only ever see :class:`ProjectFile` records, so they cannot tell the
difference — detection is earned by parsing file contents either way.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.common.errors import AnalyzerError

# Extensions the scanner reads; everything else is skipped (binaries etc.).
SCANNED_EXTENSIONS = {".json", ".yaml", ".yml", ".go", ".js", ".ts", ".java"}
MAX_FILE_BYTES = 1_000_000

CHAINCODE_EXTENSIONS = {".go", ".js", ".ts", ".java"}

METADATA_FILENAME = ".repro-meta.json"


@dataclass(frozen=True)
class ProjectFile:
    """One scannable file: repo-relative POSIX path + decoded text."""

    path: str
    content: str

    @property
    def extension(self) -> str:
        dot = self.path.rfind(".")
        return self.path[dot:] if dot >= 0 else ""

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def is_chaincode(self) -> bool:
        return self.extension in CHAINCODE_EXTENSIONS


@dataclass
class InMemoryProject:
    """A synthetic project (what the corpus generator emits)."""

    name: str
    file_map: dict[str, str] = field(default_factory=dict)
    year: Optional[int] = None

    def add(self, path: str, content: str) -> "InMemoryProject":
        self.file_map[path] = content
        return self

    def files(self) -> Iterator[ProjectFile]:
        for path in sorted(self.file_map):
            yield ProjectFile(path=path, content=self.file_map[path])

    def materialize(self, root: Path) -> Path:
        """Write the project tree to disk (for filesystem-scan tests)."""
        base = root / self.name
        for path, content in self.file_map.items():
            target = base / path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content, encoding="utf-8")
        if self.year is not None:
            (base / METADATA_FILENAME).write_text(
                json.dumps({"year": self.year}), encoding="utf-8"
            )
        return base


class FilesystemProject:
    """A project rooted at a directory on disk."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise AnalyzerError(f"{self.root} is not a directory")
        self.name = self.root.name
        self.year = self._read_year()

    def _read_year(self) -> Optional[int]:
        meta = self.root / METADATA_FILENAME
        if not meta.is_file():
            return None
        try:
            return int(json.loads(meta.read_text(encoding="utf-8")).get("year"))
        except (ValueError, TypeError, json.JSONDecodeError):
            return None

    def files(self) -> Iterator[ProjectFile]:
        for path in sorted(self.root.rglob("*")):
            if not path.is_file() or path.name == METADATA_FILENAME:
                continue
            if path.suffix not in SCANNED_EXTENSIONS:
                continue
            if path.stat().st_size > MAX_FILE_BYTES:
                continue
            try:
                content = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                continue
            yield ProjectFile(path=path.relative_to(self.root).as_posix(), content=content)


def discover_projects(root: Path | str) -> list[FilesystemProject]:
    """Treat every direct child directory of ``root`` as one project."""
    root = Path(root)
    if not root.is_dir():
        raise AnalyzerError(f"{root} is not a directory")
    return [FilesystemProject(child) for child in sorted(root.iterdir()) if child.is_dir()]


def project_files(project) -> list[ProjectFile]:
    """Normalise any project source to a file list."""
    if isinstance(project, (InMemoryProject, FilesystemProject)):
        return list(project.files())
    files = getattr(project, "files", None)
    if callable(files):
        return list(files())
    if isinstance(project, Iterable):
        return list(project)
    raise AnalyzerError(f"cannot scan object of type {type(project).__name__}")
