"""The analyzer's individual detectors (Section V-C1).

* **Explicit PDC** — the project ships a ``.json`` collection
  configuration using the fixed keywords the paper lists ("Name",
  "Policy", "RequiredPeerCount", "MaxPeerCount", "BlockToLive",
  "MemberOnlyRead", ...).  Both the historical capitalised spelling and
  the current camelCase spelling are recognised.
* **Collection-level endorsement policy** — the optional
  ``EndorsementPolicy`` property inside an explicit definition; absent
  means the project falls back to the chaincode-level policy (the
  vulnerable default).
* **Implicit PDC** — ``_implicit_org_`` appearing in chaincode, the
  per-organization implicit collections (out of scope for the attacks,
  but counted for Fig. 8).
* **configtx.yaml default policy** — which implicitMeta rule the channel
  configures as its default ``Endorsement`` policy.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.analyzer.source import ProjectFile
from repro.core.analyzer.yaml_lite import extract_endorsement_rule

# The paper's fixed keywords, normalised to lowercase.
_CORE_KEYS = {"name", "policy"}
_AUX_KEYS = {
    "requiredpeercount",
    "maxpeercount",
    "blocktolive",
    "memberonlyread",
    "memberonlywrite",
}
_ENDORSEMENT_KEY = "endorsementpolicy"

IMPLICIT_MARKER = "_implicit_org_"


@dataclass(frozen=True)
class CollectionFinding:
    """One explicit collection definition found in a ``.json`` file."""

    file_path: str
    name: Optional[str]
    has_endorsement_policy: bool
    properties: tuple[str, ...]


@dataclass
class ExplicitPdcResult:
    collections: list[CollectionFinding] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.collections)

    @property
    def any_collection_policy(self) -> bool:
        return any(c.has_endorsement_policy for c in self.collections)


def _normalise_keys(obj: dict) -> dict[str, Any]:
    return {str(k).lower(): v for k, v in obj.items()}


def _collection_objects(document: Any) -> list[dict]:
    """All dicts in a JSON document that look like collection configs."""
    found: list[dict] = []

    def walk(node: Any) -> None:
        if isinstance(node, dict):
            keys = set(_normalise_keys(node))
            if _CORE_KEYS <= keys and keys & _AUX_KEYS:
                found.append(node)
            for value in node.values():
                walk(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)

    walk(document)
    return found


def detect_explicit_pdc(files: list[ProjectFile]) -> ExplicitPdcResult:
    """Scan every ``.json`` file for explicit collection definitions."""
    result = ExplicitPdcResult()
    for file in files:
        if file.extension != ".json":
            continue
        try:
            document = json.loads(file.content)
        except json.JSONDecodeError:
            continue
        for obj in _collection_objects(document):
            normalised = _normalise_keys(obj)
            result.collections.append(
                CollectionFinding(
                    file_path=file.path,
                    name=normalised.get("name"),
                    has_endorsement_policy=_ENDORSEMENT_KEY in normalised,
                    properties=tuple(sorted(normalised)),
                )
            )
    return result


def detect_implicit_pdc(files: list[ProjectFile]) -> list[str]:
    """Chaincode files that reference implicit per-org collections."""
    return [
        file.path
        for file in files
        if file.is_chaincode and IMPLICIT_MARKER in file.content
    ]


_CONFIGTX_NAME_RE = re.compile(r"(^|/)configtx\.ya?ml$")


@dataclass(frozen=True)
class ConfigtxFinding:
    file_path: str
    endorsement_rule: Optional[str]

    @property
    def is_majority(self) -> bool:
        return bool(self.endorsement_rule) and self.endorsement_rule.upper().startswith("MAJORITY")


def detect_configtx_policy(files: list[ProjectFile]) -> list[ConfigtxFinding]:
    """Extract the default Endorsement rule from every configtx.yaml."""
    findings = []
    for file in files:
        if not _CONFIGTX_NAME_RE.search(file.path):
            continue
        findings.append(
            ConfigtxFinding(
                file_path=file.path,
                endorsement_rule=extract_endorsement_rule(file.content),
            )
        )
    return findings
