"""The static analyzer's entry points."""

from __future__ import annotations

from typing import Iterable

from repro.core.analyzer.detectors import (
    detect_configtx_policy,
    detect_explicit_pdc,
    detect_implicit_pdc,
)
from repro.core.analyzer.languages import find_read_leaks, find_write_leaks
from repro.core.analyzer.report import ProjectAnalysis
from repro.core.analyzer.source import project_files


def analyze_project(project) -> ProjectAnalysis:
    """Run every detector over one project source."""
    files = project_files(project)
    analysis = ProjectAnalysis(
        name=getattr(project, "name", "<anonymous>"),
        year=getattr(project, "year", None),
    )
    explicit = detect_explicit_pdc(files)
    analysis.collections = explicit.collections
    analysis.implicit_files = detect_implicit_pdc(files)
    analysis.configtx = detect_configtx_policy(files)
    for file in files:
        if not file.is_chaincode:
            continue
        read_leaks = find_read_leaks(file)
        if read_leaks:
            analysis.read_leak_functions[file.path] = read_leaks
        write_leaks = find_write_leaks(file)
        if write_leaks:
            analysis.write_leak_functions[file.path] = write_leaks
    return analysis


def analyze_corpus(projects: Iterable) -> list[ProjectAnalysis]:
    """Analyze every project; order of results follows input order."""
    return [analyze_project(project) for project in projects]
