"""File templates for the synthetic GitHub corpus.

Every template emits *real* project files — collection-config JSON,
Go/JS/Java chaincode, ``configtx.yaml`` — that the static analyzer must
genuinely parse.  Vulnerable and safe variants differ exactly the way the
paper's §V-B listings differ from well-written chaincode: whether the
function returns the private value, or only a hash / status.
"""

from __future__ import annotations

import json

LANGUAGES = ("go", "js", "java")


# --------------------------------------------------------------------------
# Collection configuration JSON (the explicit PDC definition)
# --------------------------------------------------------------------------
def collection_config_json(
    collection_name: str = "assetCollection",
    member_orgs: tuple[str, ...] = ("Org1MSP", "Org2MSP"),
    with_endorsement_policy: bool = False,
    block_to_live: int = 0,
) -> str:
    members = ", ".join(f"'{org}.member'" for org in member_orgs)
    config: dict = {
        "name": collection_name,
        "policy": f"OR({members})",
        "requiredPeerCount": 1,
        "maxPeerCount": 2,
        "blockToLive": block_to_live,
        "memberOnlyRead": True,
    }
    if with_endorsement_policy:
        peers = ", ".join(f"'{org}.peer'" for org in member_orgs)
        config["endorsementPolicy"] = {"signaturePolicy": f"AND({peers})"}
    return json.dumps([config], indent=2)


def collections_config_json(
    collection_names: list,
    member_orgs: tuple[str, ...] = ("Org1MSP", "Org2MSP"),
    with_endorsement_policy: bool = False,
) -> str:
    """A multi-collection config file.

    When ``with_endorsement_policy`` is set, *every* collection defines
    one (the project counts as collection-level either way, so keeping
    them uniform preserves the calibrated project-level statistics).
    """
    members = ", ".join(f"'{org}.member'" for org in member_orgs)
    collections = []
    for name in collection_names:
        config: dict = {
            "name": name,
            "policy": f"OR({members})",
            "requiredPeerCount": 1,
            "maxPeerCount": 2,
            "blockToLive": 0,
            "memberOnlyRead": True,
        }
        if with_endorsement_policy:
            peers = ", ".join(f"'{org}.peer'" for org in member_orgs)
            config["endorsementPolicy"] = {"signaturePolicy": f"AND({peers})"}
        collections.append(config)
    return json.dumps(collections, indent=2)


def readme_md(project_name: str) -> str:
    """A README decoy — markdown is never scanned, but real repos have it."""
    return (
        f"# {project_name}\n\n"
        "A Hyperledger Fabric sample application.\n\n"
        "## Setup\n\n"
        "```bash\n./network.sh up createChannel -ca\n"
        "./network.sh deployCC -ccn basic -ccp ./chaincode\n```\n"
    )


def docker_compose_yaml() -> str:
    """A compose-file decoy: YAML the configtx detector must NOT match."""
    return """version: '2.4'

services:
  peer0.org1.example.com:
    image: hyperledger/fabric-peer:2.2
    environment:
      - CORE_PEER_ID=peer0.org1.example.com
      - CORE_PEER_GOSSIP_USELEADERELECTION=true
    ports:
      - 7051:7051

  orderer.example.com:
    image: hyperledger/fabric-orderer:2.2
    environment:
      - ORDERER_GENERAL_LISTENPORT=7050
    ports:
      - 7050:7050
"""


def decoy_package_json(project_name: str) -> str:
    """A ``package.json`` that must *not* trigger the explicit detector."""
    return json.dumps(
        {
            "name": project_name,
            "version": "1.0.0",
            "description": "Hyperledger Fabric sample application",
            "scripts": {"test": "mocha"},
            "dependencies": {"fabric-network": "^2.2.0"},
        },
        indent=2,
    )


# --------------------------------------------------------------------------
# configtx.yaml
# --------------------------------------------------------------------------
def configtx_yaml(endorsement_rule: str = "MAJORITY Endorsement") -> str:
    return f"""---
Organizations:
  - &Org1
    Name: Org1MSP
    ID: Org1MSP
    MSPDir: crypto-config/peerOrganizations/org1.example.com/msp
    Policies:
      Readers:
        Type: Signature
        Rule: "OR('Org1MSP.member')"
      Endorsement:
        Type: Signature
        Rule: "OR('Org1MSP.peer')"

Application: &ApplicationDefaults
  Organizations:
  Policies:
    Readers:
      Type: ImplicitMeta
      Rule: "ANY Readers"
    Writers:
      Type: ImplicitMeta
      Rule: "ANY Writers"
    LifecycleEndorsement:
      Type: ImplicitMeta
      Rule: "MAJORITY Endorsement"
    Endorsement:
      Type: ImplicitMeta
      Rule: "{endorsement_rule}"
  Capabilities:
    V2_0: true

Orderer: &OrdererDefaults
  OrdererType: etcdraft
  BatchTimeout: 2s
  BatchSize:
    MaxMessageCount: 10
"""


# --------------------------------------------------------------------------
# Go chaincode
# --------------------------------------------------------------------------
_GO_HEADER = """package main

import (
\t"fmt"
\t"encoding/hex"

\t"github.com/hyperledger/fabric-chaincode-go/shim"
)

type SmartContract struct {
}
"""

_GO_READ_LEAKY = """
// readPrivateAsset returns the private value to the caller -- the
// Listing-1 pattern: the value lands in the plaintext payload field.
func readPrivateAsset(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tif len(args) != 1 {
\t\treturn "", fmt.Errorf("Incorrect arguments. Expecting a key")
\t}
\tasset, err := stub.GetPrivateData("%(collection)s", args[0])
\tif err != nil {
\t\treturn "", fmt.Errorf("Failed to get asset: %%s", args[0])
\t}
\treturn string(asset), nil
}
"""

_GO_READ_SAFE = """
// verifyPrivateAsset only ever exposes the SHA-256 hash of the value.
func verifyPrivateAsset(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tif len(args) != 1 {
\t\treturn "", fmt.Errorf("Incorrect arguments. Expecting a key")
\t}
\tdigest, err := stub.GetPrivateDataHash("%(collection)s", args[0])
\tif err != nil {
\t\treturn "", fmt.Errorf("Failed to get asset hash: %%s", args[0])
\t}
\treturn hex.EncodeToString(digest), nil
}

// privateAssetExists reads the private value but returns only a flag.
func privateAssetExists(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tasset, err := stub.GetPrivateData("%(collection)s", args[0])
\tif err != nil {
\t\treturn "", err
\t}
\tif asset == nil {
\t\treturn "false", nil
\t}
\treturn "true", nil
}
"""

_GO_WRITE_LEAKY = """
// setPrivate is the Listing-2 pattern: it echoes args[1] back to the
// client, leaking the written value through the payload field.
func setPrivate(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tif len(args) != 2 {
\t\treturn "", fmt.Errorf("Incorrect arguments. Expecting a key and a value")
\t}
\terr := stub.PutPrivateData("%(collection)s", args[0], []byte(args[1]))
\tif err != nil {
\t\treturn "", fmt.Errorf("Failed to set asset: %%s", args[0])
\t}
\treturn args[1], nil
}
"""

_GO_WRITE_SAFE = """
// setPrivateAsset acknowledges the write without echoing the value.
func setPrivateAsset(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tif len(args) != 2 {
\t\treturn "", fmt.Errorf("Incorrect arguments. Expecting a key and a value")
\t}
\terr := stub.PutPrivateData("%(collection)s", args[0], []byte(args[1]))
\tif err != nil {
\t\treturn "", fmt.Errorf("Failed to set asset: %%s", args[0])
\t}
\treturn "ok", nil
}
"""


def go_chaincode(collection: str, read_leak: bool, write_leak: bool) -> str:
    parts = [_GO_HEADER]
    parts.append((_GO_READ_LEAKY if read_leak else _GO_READ_SAFE) % {"collection": collection})
    parts.append((_GO_WRITE_LEAKY if write_leak else _GO_WRITE_SAFE) % {"collection": collection})
    return "".join(parts)


# --------------------------------------------------------------------------
# JavaScript / TypeScript chaincode
# --------------------------------------------------------------------------
_JS_HEADER = """'use strict';

const { Contract } = require('fabric-contract-api');

class PrivateAssetContract extends Contract {
"""

_JS_READ_LEAKY = """
    async readPrivateAsset(ctx, assetId) {
        const exists = await this.privateAssetHashExists(ctx, assetId);
        if (!exists) {
            throw new Error(`The asset ${assetId} does not exist`);
        }
        const buffer = await ctx.stub.getPrivateData('%(collection)s', assetId);
        const asset = JSON.parse(buffer.toString());
        return asset;
    }
"""

_JS_READ_SAFE = """
    async privateAssetSummary(ctx, assetId) {
        const buffer = await ctx.stub.getPrivateData('%(collection)s', assetId);
        if (!buffer || buffer.length === 0) {
            throw new Error(`The asset ${assetId} does not exist`);
        }
        return 'present';
    }

    async privateAssetHash(ctx, assetId) {
        const digest = await ctx.stub.getPrivateDataHash('%(collection)s', assetId);
        return digest.toString('hex');
    }
"""

_JS_WRITE_LEAKY = """
    async setPrivateAsset(ctx, assetId, value) {
        await ctx.stub.putPrivateData('%(collection)s', assetId, Buffer.from(value));
        return value;
    }
"""

_JS_WRITE_SAFE = """
    async createPrivateAsset(ctx, assetId) {
        const transientMap = ctx.stub.getTransient();
        const value = transientMap.get('asset');
        await ctx.stub.putPrivateData('%(collection)s', assetId, value);
        return 'committed';
    }
"""

_JS_FOOTER = """
    async privateAssetHashExists(ctx, assetId) {
        const digest = await ctx.stub.getPrivateDataHash('%(collection)s', assetId);
        return !!digest && digest.length > 0;
    }
}

module.exports = PrivateAssetContract;
"""


def js_chaincode(collection: str, read_leak: bool, write_leak: bool) -> str:
    parts = [_JS_HEADER]
    parts.append((_JS_READ_LEAKY if read_leak else _JS_READ_SAFE) % {"collection": collection})
    parts.append((_JS_WRITE_LEAKY if write_leak else _JS_WRITE_SAFE) % {"collection": collection})
    parts.append(_JS_FOOTER % {"collection": collection})
    return "".join(parts)


# --------------------------------------------------------------------------
# Java chaincode
# --------------------------------------------------------------------------
_JAVA_HEADER = """package org.example.chaincode;

import org.hyperledger.fabric.contract.Context;
import org.hyperledger.fabric.contract.ContractInterface;
import org.hyperledger.fabric.shim.ChaincodeStub;

public final class PrivateAssetContract implements ContractInterface {
"""

_JAVA_READ_LEAKY = """
    public String readPrivateAsset(final Context ctx, final String assetId) {
        ChaincodeStub stub = ctx.getStub();
        byte[] data = stub.getPrivateData("%(collection)s", assetId);
        if (data == null || data.length == 0) {
            throw new RuntimeException("asset not found");
        }
        String result = new String(data);
        return result;
    }
"""

_JAVA_READ_SAFE = """
    public String privateAssetExists(final Context ctx, final String assetId) {
        ChaincodeStub stub = ctx.getStub();
        byte[] data = stub.getPrivateData("%(collection)s", assetId);
        if (data == null || data.length == 0) {
            return "false";
        }
        return "true";
    }
"""

_JAVA_WRITE_LEAKY = """
    public String setPrivateAsset(final Context ctx, final String assetId, final String value) {
        ChaincodeStub stub = ctx.getStub();
        stub.putPrivateData("%(collection)s", assetId, value.getBytes());
        return value;
    }
"""

_JAVA_WRITE_SAFE = """
    public String createPrivateAsset(final Context ctx, final String assetId) {
        ChaincodeStub stub = ctx.getStub();
        byte[] value = stub.getTransient().get("asset");
        stub.putPrivateData("%(collection)s", assetId, value);
        return "committed";
    }
"""

_JAVA_FOOTER = """
}
"""


def java_chaincode(collection: str, read_leak: bool, write_leak: bool) -> str:
    parts = [_JAVA_HEADER]
    parts.append((_JAVA_READ_LEAKY if read_leak else _JAVA_READ_SAFE) % {"collection": collection})
    parts.append((_JAVA_WRITE_LEAKY if write_leak else _JAVA_WRITE_SAFE) % {"collection": collection})
    parts.append(_JAVA_FOOTER)
    return "".join(parts)


def chaincode_for(language: str, collection: str, read_leak: bool, write_leak: bool) -> tuple[str, str]:
    """(relative path, content) of the chaincode file for ``language``."""
    if language == "go":
        return "chaincode/private_asset.go", go_chaincode(collection, read_leak, write_leak)
    if language == "js":
        return "chaincode/lib/private-asset-contract.js", js_chaincode(
            collection, read_leak, write_leak
        )
    if language == "java":
        return (
            "chaincode/src/main/java/org/example/PrivateAssetContract.java",
            java_chaincode(collection, read_leak, write_leak),
        )
    raise ValueError(f"unknown language {language!r}")


# --------------------------------------------------------------------------
# Implicit PDC and non-PDC chaincode
# --------------------------------------------------------------------------
def implicit_pdc_chaincode() -> str:
    """Go chaincode using the per-org implicit collections."""
    return (
        _GO_HEADER
        + """
// storeOrgSecret writes into the caller organization's implicit collection.
func storeOrgSecret(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tif len(args) != 2 {
\t\treturn "", fmt.Errorf("Incorrect arguments. Expecting a key and a value")
\t}
\tcollection := "_implicit_org_Org1MSP"
\terr := stub.PutPrivateData(collection, args[0], []byte(args[1]))
\tif err != nil {
\t\treturn "", fmt.Errorf("Failed to store secret: %s", args[0])
\t}
\treturn "stored", nil
}
"""
    )


def public_only_chaincode() -> str:
    """Chaincode that never touches private data (a non-PDC project)."""
    return (
        _GO_HEADER
        + """
func createAsset(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tif len(args) != 2 {
\t\treturn "", fmt.Errorf("Incorrect arguments. Expecting a key and a value")
\t}
\terr := stub.PutState(args[0], []byte(args[1]))
\tif err != nil {
\t\treturn "", fmt.Errorf("Failed to create asset: %s", args[0])
\t}
\treturn args[1], nil
}

func readAsset(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tvalue, err := stub.GetState(args[0])
\tif err != nil {
\t\treturn "", fmt.Errorf("Failed to read asset: %s", args[0])
\t}
\treturn string(value), nil
}
"""
    )
