"""Synthetic GitHub corpus calibrated to the paper's measurements."""

from repro.core.corpus.generator import (
    ProjectDescriptor,
    SyntheticCorpus,
    build_project,
    generate_corpus,
    plan_corpus,
)
from repro.core.corpus.spec import PAPER_SPEC, CorpusSpec, small_spec

__all__ = [
    "ProjectDescriptor",
    "SyntheticCorpus",
    "build_project",
    "generate_corpus",
    "plan_corpus",
    "PAPER_SPEC",
    "CorpusSpec",
    "small_spec",
]
