"""Corpus specification: the population the paper measured (Section V-C2).

GitHub is unreachable offline, so the corpus is synthesized — but its
*marginal statistics* are the ones the paper reports for the 6392
repositories it crawled (January 2016 – December 2020):

* 6392 projects total; 252 explicit-PDC, 35 implicit-PDC, 31 both;
* 218 of the 252 explicit projects rely on the chaincode-level policy
  (86.51%), 34 define a collection-level ``EndorsementPolicy``;
* 120 ``configtx.yaml`` files among the 218, of which 116 configure
  ``MAJORITY Endorsement``;
* 231 of the 252 explicit projects leak PDC through read functions
  (91.67%), 20 of those *also* through write functions;
* no PDC before 2018 (the feature shipped in Fabric 1.2, mid-2018).

Cross-attribute joints are not reported by the paper, so they are drawn
deterministically from a seeded shuffle with the marginals held exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CorpusError


@dataclass(frozen=True)
class CorpusSpec:
    """Exact target counts for the synthetic corpus."""

    total_projects: int = 6392
    # Fig. 7 year shape: sharp growth in 2019/2020; totals sum to 6392.
    projects_by_year: dict = field(
        default_factory=lambda: {2016: 52, 2017: 403, 2018: 914, 2019: 2281, 2020: 2742}
    )
    # PDC projects (union explicit ∪ implicit = 256) by year, 2018+ only.
    pdc_by_year: dict = field(default_factory=lambda: {2018: 21, 2019: 87, 2020: 148})

    explicit_projects: int = 252
    implicit_projects: int = 35
    both_projects: int = 31

    collection_policy_projects: int = 34  # of the explicit 252
    configtx_projects: int = 120  # of the 218 chaincode-level projects
    configtx_majority: int = 116  # of the 120

    read_leak_projects: int = 231  # of the explicit 252
    write_leak_projects: int = 20  # subset of the 231 read-leaky ones

    language_weights: dict = field(
        default_factory=lambda: {"go": 0.55, "js": 0.35, "java": 0.10}
    )

    seed: int = 2021

    # -- derived counts ------------------------------------------------------
    @property
    def explicit_only(self) -> int:
        return self.explicit_projects - self.both_projects

    @property
    def implicit_only(self) -> int:
        return self.implicit_projects - self.both_projects

    @property
    def pdc_union(self) -> int:
        return self.explicit_only + self.implicit_only + self.both_projects

    @property
    def chaincode_level_projects(self) -> int:
        return self.explicit_projects - self.collection_policy_projects

    def validate(self) -> None:
        if sum(self.projects_by_year.values()) != self.total_projects:
            raise CorpusError("projects_by_year must sum to total_projects")
        if sum(self.pdc_by_year.values()) != self.pdc_union:
            raise CorpusError("pdc_by_year must sum to the PDC project union")
        if self.both_projects > min(self.explicit_projects, self.implicit_projects):
            raise CorpusError("both_projects exceeds explicit/implicit counts")
        if self.collection_policy_projects > self.explicit_projects:
            raise CorpusError("collection_policy_projects exceeds explicit count")
        if self.configtx_projects > self.chaincode_level_projects:
            raise CorpusError("configtx_projects exceeds chaincode-level count")
        if self.configtx_majority > self.configtx_projects:
            raise CorpusError("configtx_majority exceeds configtx count")
        if self.read_leak_projects > self.explicit_projects:
            raise CorpusError("read_leak_projects exceeds explicit count")
        if self.write_leak_projects > self.read_leak_projects:
            raise CorpusError("write_leak_projects must be a subset of read-leaky ones")
        for year in self.pdc_by_year:
            if self.pdc_by_year[year] > self.projects_by_year.get(year, 0):
                raise CorpusError(f"more PDC than total projects in {year}")
        if abs(sum(self.language_weights.values()) - 1.0) > 1e-9:
            raise CorpusError("language_weights must sum to 1")


PAPER_SPEC = CorpusSpec()


def small_spec(scale: int = 20) -> CorpusSpec:
    """A scaled-down spec for fast tests (exact proportions not preserved,
    but every attribute class is populated)."""
    return CorpusSpec(
        total_projects=scale * 10,
        projects_by_year={2016: scale, 2017: scale, 2018: 2 * scale, 2019: 3 * scale, 2020: 3 * scale},
        pdc_by_year={2018: scale // 2, 2019: scale // 2, 2020: scale},
        explicit_projects=2 * scale - scale // 4,
        implicit_projects=scale // 2,
        both_projects=scale // 4,
        collection_policy_projects=scale // 4,
        configtx_projects=scale // 2,
        configtx_majority=scale // 2 - 1,
        read_leak_projects=scale,
        write_leak_projects=scale // 5,
        seed=7,
    )
