"""Synthetic corpus generator.

Builds :class:`~repro.core.analyzer.source.InMemoryProject` trees whose
population statistics match a :class:`CorpusSpec` *exactly* — every
attribute is assigned by deterministic seeded shuffles over descriptor
lists, never by independent coin flips, so the analyzer's aggregate
output reproduces the paper's numbers bit-for-bit on every run.

The generator emits real files (collection JSON, chaincode in three
languages, configtx.yaml); nothing about a project's classification is
stored anywhere the analyzer could cheat from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.analyzer.source import InMemoryProject
from repro.core.corpus import templates
from repro.core.corpus.spec import CorpusSpec, PAPER_SPEC


@dataclass
class ProjectDescriptor:
    """The ground-truth attributes of one synthetic project."""

    index: int
    year: int
    explicit: bool = False
    implicit: bool = False
    collection_policy: bool = False
    has_configtx: bool = False
    configtx_rule: str = "MAJORITY Endorsement"
    read_leak: bool = False
    write_leak: bool = False
    language: str = "go"
    # Cosmetic variation (does not affect the calibrated statistics):
    collection_count: int = 1
    with_readme: bool = False
    with_compose: bool = False

    @property
    def name(self) -> str:
        return f"fabric-project-{self.index:05d}"


def plan_corpus(spec: CorpusSpec = PAPER_SPEC) -> list[ProjectDescriptor]:
    """Assign attributes to descriptors with exact marginal counts."""
    spec.validate()
    rng = random.Random(spec.seed)

    descriptors: list[ProjectDescriptor] = []
    index = 0
    pdc_descriptors: list[ProjectDescriptor] = []
    for year in sorted(spec.projects_by_year):
        total = spec.projects_by_year[year]
        pdc = spec.pdc_by_year.get(year, 0)
        for position in range(total):
            descriptor = ProjectDescriptor(index=index, year=year)
            descriptors.append(descriptor)
            if position < pdc:
                pdc_descriptors.append(descriptor)
            index += 1

    # Which PDC projects are explicit-only / both / implicit-only.
    rng.shuffle(pdc_descriptors)
    explicit_only = spec.explicit_only
    both = spec.both_projects
    for i, descriptor in enumerate(pdc_descriptors):
        if i < explicit_only:
            descriptor.explicit = True
        elif i < explicit_only + both:
            descriptor.explicit = True
            descriptor.implicit = True
        else:
            descriptor.implicit = True

    explicit_descriptors = [d for d in pdc_descriptors if d.explicit]

    # Collection-level EndorsementPolicy subset.
    shuffled = list(explicit_descriptors)
    rng.shuffle(shuffled)
    for descriptor in shuffled[: spec.collection_policy_projects]:
        descriptor.collection_policy = True

    # configtx.yaml among the chaincode-level projects; MAJORITY vs ANY.
    chaincode_level = [d for d in explicit_descriptors if not d.collection_policy]
    rng.shuffle(chaincode_level)
    with_configtx = chaincode_level[: spec.configtx_projects]
    for i, descriptor in enumerate(with_configtx):
        descriptor.has_configtx = True
        descriptor.configtx_rule = (
            "MAJORITY Endorsement" if i < spec.configtx_majority else "ANY Endorsement"
        )

    # Leakage: read leaks, then write leaks as a subset of the read-leaky.
    shuffled = list(explicit_descriptors)
    rng.shuffle(shuffled)
    read_leaky = shuffled[: spec.read_leak_projects]
    for descriptor in read_leaky:
        descriptor.read_leak = True
    rng.shuffle(read_leaky)
    for descriptor in read_leaky[: spec.write_leak_projects]:
        descriptor.write_leak = True

    # Languages, weighted; plus cosmetic per-project variation.
    languages = sorted(spec.language_weights)
    weights = [spec.language_weights[lang] for lang in languages]
    for descriptor in descriptors:
        descriptor.language = rng.choices(languages, weights=weights, k=1)[0]
        descriptor.collection_count = rng.choices((1, 2, 3), weights=(0.7, 0.2, 0.1))[0]
        descriptor.with_readme = rng.random() < 0.8
        descriptor.with_compose = rng.random() < 0.5

    return descriptors


def build_project(descriptor: ProjectDescriptor) -> InMemoryProject:
    """Materialise one descriptor into actual project files."""
    project = InMemoryProject(name=descriptor.name, year=descriptor.year)
    collection = "assetCollection"

    if descriptor.explicit:
        project.add(
            "collections_config.json",
            templates.collections_config_json(
                collection_names=[collection]
                + [f"auxCollection{i}" for i in range(1, descriptor.collection_count)],
                with_endorsement_policy=descriptor.collection_policy,
            ),
        )
        path, content = templates.chaincode_for(
            descriptor.language, collection, descriptor.read_leak, descriptor.write_leak
        )
        project.add(path, content)
    elif descriptor.implicit:
        project.add("chaincode/org_secret.go", templates.implicit_pdc_chaincode())
    else:
        project.add("chaincode/public_asset.go", templates.public_only_chaincode())

    if descriptor.explicit and descriptor.implicit:
        project.add("chaincode/org_secret.go", templates.implicit_pdc_chaincode())

    if descriptor.has_configtx:
        project.add("network/configtx.yaml", templates.configtx_yaml(descriptor.configtx_rule))

    # Every project ships an application manifest that must never trip
    # the explicit-PDC detector; most ship a README and compose file too.
    project.add("application/package.json", templates.decoy_package_json(descriptor.name))
    if descriptor.with_readme:
        project.add("README.md", templates.readme_md(descriptor.name))
    if descriptor.with_compose:
        project.add("docker-compose.yaml", templates.docker_compose_yaml())
    return project


@dataclass
class SyntheticCorpus:
    """The generated corpus: descriptors (ground truth) + projects."""

    spec: CorpusSpec
    descriptors: list[ProjectDescriptor]
    projects: list[InMemoryProject] = field(default_factory=list)

    def materialize(self, root: Path | str, limit: Optional[int] = None) -> Path:
        """Write (a sample of) the corpus to disk for filesystem scans."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        for project in self.projects[: limit if limit is not None else len(self.projects)]:
            project.materialize(root)
        return root


def generate_corpus(spec: CorpusSpec = PAPER_SPEC) -> SyntheticCorpus:
    """Plan and build the full corpus in memory."""
    descriptors = plan_corpus(spec)
    projects = [build_project(d) for d in descriptors]
    return SyntheticCorpus(spec=spec, descriptors=descriptors, projects=projects)
