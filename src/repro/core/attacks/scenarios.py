"""The Table II attack & defense matrix.

Runs every injection attack under every configuration column of Table II
(chaincode-level MAJORITY, chaincode-level 2OutOf5, collection-level
AND(org1, org2), and New Feature 1) plus both leakage attacks under the
original framework and New Feature 2, and assembles the same ✓/× matrix
the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.attacks.base import AttackReport
from repro.core.attacks.fake_read import run_fake_read_injection
from repro.core.attacks.fake_write import (
    run_fake_delete_injection,
    run_fake_read_write_injection,
    run_fake_write_injection,
)
from repro.core.attacks.leakage import run_pdc_read_leakage, run_pdc_write_leakage
from repro.core.defense.features import FrameworkFeatures
from repro.network.presets import TestNetwork, five_org_network, three_org_network

COLLECTION_LEVEL_POLICY = "AND('Org1MSP.peer', 'Org2MSP.peer')"

INJECTION_ROWS = ("read-only", "write-only", "read-write", "delete-related")
INJECTION_COLUMNS = (
    "majority",  # Default Policy: MAJORITY
    "2outof5",  # Default Policy: 2OutOf5
    "collection-policy",  # Define Collection-level Policy: AND(org1, org2)
    "feature1",  # New Feature 1 enabled (with the collection-level policy defined)
)
# Beyond Table II: the supplemental non-member endorsement filter of §V-D,
# on an otherwise-default MAJORITY network (no collection-level policy).
EXTRA_INJECTION_COLUMNS = ("nonmember-filter",)
LEAKAGE_ROWS = ("pdc-read", "pdc-write")
LEAKAGE_COLUMNS = ("original", "feature2")

# Expected marks straight from Table II of the paper.
PAPER_INJECTION_MATRIX: dict[tuple[str, str], str] = {
    ("read-only", "majority"): "√",
    ("read-only", "2outof5"): "√",
    ("read-only", "collection-policy"): "√",
    ("read-only", "feature1"): "×",
    ("write-only", "majority"): "√",
    ("write-only", "2outof5"): "√",
    ("write-only", "collection-policy"): "×",
    ("write-only", "feature1"): "×",
    ("read-write", "majority"): "√",
    ("read-write", "2outof5"): "√",
    ("read-write", "collection-policy"): "×",
    ("read-write", "feature1"): "×",
    ("delete-related", "majority"): "√",
    ("delete-related", "2outof5"): "√",
    ("delete-related", "collection-policy"): "×",
    ("delete-related", "feature1"): "×",
}
PAPER_LEAKAGE_MATRIX: dict[tuple[str, str], str] = {
    ("pdc-read", "original"): "√",
    ("pdc-read", "feature2"): "×",
    ("pdc-write", "original"): "√",
    ("pdc-write", "feature2"): "×",
}


def _network_for(column: str) -> tuple[TestNetwork, tuple[int, ...]]:
    """Build the preset network for one Table II column.

    Returns the network and which org numbers play the malicious
    endorsers (§V-A: org1+org3 for the 3-org setups; org3+org4 — both PDC
    non-members — for the 2OutOf5 setup).
    """
    if column == "majority":
        return three_org_network(), (1, 3)
    if column == "2outof5":
        return five_org_network(), (3, 4)
    if column == "collection-policy":
        return three_org_network(collection_policy=COLLECTION_LEVEL_POLICY), (1, 3)
    if column == "feature1":
        return (
            three_org_network(
                collection_policy=COLLECTION_LEVEL_POLICY,
                features=FrameworkFeatures.feature1_only(),
            ),
            (1, 3),
        )
    if column == "nonmember-filter":
        return (
            three_org_network(
                features=FrameworkFeatures(filter_nonmember_endorsements=True)
            ),
            (1, 3),
        )
    raise ValueError(f"unknown Table II column {column!r}")


_INJECTION_RUNNERS: dict[str, Callable[..., AttackReport]] = {
    "read-only": run_fake_read_injection,
    "write-only": run_fake_write_injection,
    "read-write": run_fake_read_write_injection,
    "delete-related": run_fake_delete_injection,
}


def run_injection_cell(row: str, column: str) -> AttackReport:
    """Run one injection attack under one configuration."""
    net, malicious = _network_for(column)
    runner = _INJECTION_RUNNERS[row]
    return runner(net, malicious_org_nums=malicious)


def run_leakage_cell(row: str, column: str) -> AttackReport:
    features = (
        FrameworkFeatures.feature2_only() if column == "feature2" else FrameworkFeatures.original()
    )
    if row == "pdc-read":
        return run_pdc_read_leakage(features)
    if row == "pdc-write":
        return run_pdc_write_leakage(features)
    raise ValueError(f"unknown leakage row {row!r}")


@dataclass
class AttackMatrix:
    """The measured Table II, with per-cell evidence."""

    injection: dict[tuple[str, str], AttackReport] = field(default_factory=dict)
    leakage: dict[tuple[str, str], AttackReport] = field(default_factory=dict)

    def mark(self, row: str, column: str) -> str:
        cell = self.injection.get((row, column)) or self.leakage.get((row, column))
        if cell is None:
            return "N/A"
        return cell.mark

    def matches_paper(self) -> bool:
        """Whether every measured cell reproduces Table II."""
        return not self.mismatches()

    def mismatches(self) -> list[tuple[str, str, str, str]]:
        """Cells that deviate from the paper: (row, col, paper, measured)."""
        wrong = []
        for (row, col), expected in PAPER_INJECTION_MATRIX.items():
            measured = self.mark(row, col)
            if measured != expected:
                wrong.append((row, col, expected, measured))
        for (row, col), expected in PAPER_LEAKAGE_MATRIX.items():
            measured = self.mark(row, col)
            if measured != expected:
                wrong.append((row, col, expected, measured))
        return wrong

    def render(self) -> str:
        """A printable Table II."""
        lines = ["Table II — Attack & Defense evaluation (measured)"]
        header = f"{'Attack':<16}" + "".join(f"{c:>20}" for c in INJECTION_COLUMNS)
        lines.append(header)
        for row in INJECTION_ROWS:
            cells = "".join(f"{self.mark(row, c):>20}" for c in INJECTION_COLUMNS)
            lines.append(f"{row:<16}{cells}")
        lines.append("")
        lines.append(f"{'Leakage':<16}" + "".join(f"{c:>20}" for c in LEAKAGE_COLUMNS))
        for row in LEAKAGE_ROWS:
            cells = "".join(f"{self.mark(row, c):>20}" for c in LEAKAGE_COLUMNS)
            lines.append(f"{row:<16}{cells}")
        return "\n".join(lines)


def run_attack_matrix(
    injection_columns: tuple[str, ...] = INJECTION_COLUMNS,
    leakage_columns: tuple[str, ...] = LEAKAGE_COLUMNS,
    progress: Optional[Callable[[str], None]] = None,
) -> AttackMatrix:
    """Run the full Table II evaluation (16 injection + 4 leakage cells)."""
    matrix = AttackMatrix()
    for column in injection_columns:
        for row in INJECTION_ROWS:
            if progress:
                progress(f"injection {row} under {column}")
            matrix.injection[(row, column)] = run_injection_cell(row, column)
    for column in leakage_columns:
        for row in LEAKAGE_ROWS:
            if progress:
                progress(f"leakage {row} under {column}")
            matrix.leakage[(row, column)] = run_leakage_cell(row, column)
    return matrix
