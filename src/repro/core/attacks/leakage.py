"""PDC leakage through the plaintext ``payload`` field (Section IV-B).

No protocol violation is needed: a PDC non-member peer simply parses the
transactions it already stores in its local blockchain and reads the
``payload`` field of each proposal-response — plaintext under the original
framework even for PDC transactions (Use Case 3).

Two scenarios reproduce the vulnerable GitHub projects of §V-B:

* **PDC-read leakage** — an auditing application *submits* PDC reads so
  they are recorded on-chain; the chaincode returns the value (Listing 1).
* **PDC-write leakage** — a sloppy write function echoes the written value
  back (Listing 2).

Under **New Feature 2** the on-chain payload is ``SHA-256(value)``; the
extraction still runs but recovers no plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaincode.contracts import PerfTestContract, SaccPrivateContract
from repro.core.attacks.base import AttackReport
from repro.core.defense.features import FrameworkFeatures
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork
from repro.peer.node import PeerNode
from repro.protocol.transaction import ValidationCode


@dataclass(frozen=True)
class LeakedRecord:
    """One payload harvested from a peer's local blockchain."""

    tx_id: str
    function: str
    args: tuple[str, ...]
    payload: bytes
    collections: tuple[str, ...]
    event_payload: bytes = b""  # chaincode events are plaintext too


def harvest_payloads(
    peer: PeerNode, chaincode_id: str, collection: str
) -> list[LeakedRecord]:
    """What a (non-member) peer can extract from its own block store.

    Scans every *valid* committed transaction that touched ``collection``
    and returns the response payloads — the §IV-B extraction, verbatim.
    """
    records = []
    for tx, flag in peer.ledger.blockchain.all_transactions():
        if flag is not ValidationCode.VALID or tx.chaincode_id != chaincode_id:
            continue
        touched = {col for _ns, col in tx.payload.results.collections_touched()}
        if collection not in touched:
            continue
        records.append(
            LeakedRecord(
                tx_id=tx.tx_id,
                function=tx.function,
                args=tx.args,
                payload=tx.payload.response.payload,
                collections=tuple(sorted(touched)),
                event_payload=tx.payload.event.payload if tx.payload.event else b"",
            )
        )
    return records


def _two_org_read_network(features: FrameworkFeatures) -> tuple[FabricNetwork, PeerNode, PeerNode]:
    """The Listing-1 project: org1 is the sole PDC member, org2 is not."""
    orgs = [Organization("Org1MSP"), Organization("Org2MSP")]
    channel = ChannelConfig(channel_id="leakchannel", organizations=orgs)
    channel.deploy_chaincode(
        "perftest",
        endorsement_policy="OR('Org1MSP.peer')",
        collections=[
            CollectionConfig(
                name="CollectionPerfTest",
                policy="OR('Org1MSP.member')",
                required_peer_count=0,
            )
        ],
    )
    network = FabricNetwork(channel=channel, features=features)
    member = network.add_peer("Org1MSP")
    nonmember = network.add_peer("Org2MSP")
    network.install_chaincode("perftest", PerfTestContract())
    return network, member, nonmember


def run_pdc_read_leakage(
    features: FrameworkFeatures | None = None, secret: bytes = b"confidential-perf-report"
) -> AttackReport:
    """Reproduce the §V-B1 leakage (GitHub project [14])."""
    features = features or FrameworkFeatures.original()
    network, member, nonmember = _two_org_read_network(features)
    client = network.client("Org1MSP")
    client.submit_transaction(
        "perftest", "create_private_perf_test", ["perf1"],
        transient={"asset": secret}, endorsing_peers=[member],
    ).raise_for_status()
    # The auditing pattern: the read is *submitted*, so it lands on-chain.
    read = client.submit_transaction(
        "perftest", "read_private_perf_test", ["perf1"], endorsing_peers=[member]
    )
    read.raise_for_status()
    assert read.payload == secret, "the client always receives the plaintext"

    harvested = harvest_payloads(nonmember, "perftest", "CollectionPerfTest")
    leaked = any(record.payload == secret for record in harvested)
    assert nonmember.query_private("perftest", "CollectionPerfTest", "perf1") is None, (
        "the non-member never holds the original private data store entry"
    )
    return AttackReport(
        name="pdc-leakage-read",
        tx_type="pdc-read",
        succeeded=leaked,
        summary=(
            "non-member recovered the plaintext PDC value from its local blockchain"
            if leaked
            else "non-member saw only hashed payloads; plaintext stayed with members"
        ),
        details={
            "framework": features.describe(),
            "harvested_payloads": [r.payload for r in harvested],
            "client_payload": read.payload,
        },
    )


def run_pdc_write_leakage(
    features: FrameworkFeatures | None = None, secret: str = "trade-volume-42000"
) -> AttackReport:
    """Reproduce the §V-B2 leakage (GitHub project [15], 3 orgs)."""
    features = features or FrameworkFeatures.original()
    orgs = [Organization("Org1MSP"), Organization("Org2MSP"), Organization("Org3MSP")]
    channel = ChannelConfig(channel_id="leakchannel", organizations=orgs)
    channel.deploy_chaincode(
        "sacc",
        endorsement_policy="MAJORITY Endorsement",
        collections=[
            CollectionConfig(
                name="demo",
                policy="OR('Org1MSP.member', 'Org2MSP.member')",
                required_peer_count=0,
            )
        ],
    )
    network = FabricNetwork(channel=channel, features=features)
    p1 = network.add_peer("Org1MSP")
    p2 = network.add_peer("Org2MSP")
    p3 = network.add_peer("Org3MSP")
    network.install_chaincode("sacc", SaccPrivateContract())

    client = network.client("Org1MSP")
    result = client.submit_transaction(
        "sacc", "set_private", ["acct", secret], endorsing_peers=[p1, p2]
    )
    result.raise_for_status()

    harvested = harvest_payloads(p3, "sacc", "demo")
    leaked_via_payload = any(r.payload == secret.encode("utf-8") for r in harvested)
    return AttackReport(
        name="pdc-leakage-write",
        tx_type="pdc-write",
        succeeded=leaked_via_payload,
        summary=(
            "non-member org3 recovered the written PDC value from the echoed payload"
            if leaked_via_payload
            else "payload on-chain is hashed; org3 recovered nothing"
        ),
        details={
            "framework": features.describe(),
            "harvested_payloads": [r.payload for r in harvested],
            # Listing 2 additionally passes the value as a plain proposal
            # argument — a second leak channel the paper notes in passing;
            # Feature 2 does not (and cannot) close this one.
            "args_on_chain": [r.args for r in harvested],
        },
    )
