"""The paper's attacks: fake PDC result injection and PDC leakage."""

from repro.core.attacks.base import AttackReport, install_constrained_contracts, seed_private_value
from repro.core.attacks.collusion import (
    CollusionReport,
    analyze_collusion,
    minimum_satisfying_orgs,
)
from repro.core.attacks.fake_read import run_fake_read_injection
from repro.core.attacks.ops import (
    ColludingPrivateAssetContract,
    expected_policy_ok,
    favourable_endorsers,
    nonsatisfying_endorsers,
)
from repro.core.attacks.fake_write import (
    run_fake_delete_injection,
    run_fake_read_write_injection,
    run_fake_write_injection,
)
from repro.core.attacks.leakage import (
    LeakedRecord,
    harvest_payloads,
    run_pdc_read_leakage,
    run_pdc_write_leakage,
)
from repro.core.attacks.scenarios import (
    AttackMatrix,
    PAPER_INJECTION_MATRIX,
    PAPER_LEAKAGE_MATRIX,
    run_attack_matrix,
    run_injection_cell,
    run_leakage_cell,
)

__all__ = [
    "AttackReport",
    "CollusionReport",
    "analyze_collusion",
    "minimum_satisfying_orgs",
    "install_constrained_contracts",
    "seed_private_value",
    "ColludingPrivateAssetContract",
    "expected_policy_ok",
    "favourable_endorsers",
    "nonsatisfying_endorsers",
    "run_fake_read_injection",
    "run_fake_delete_injection",
    "run_fake_read_write_injection",
    "run_fake_write_injection",
    "LeakedRecord",
    "harvest_payloads",
    "run_pdc_read_leakage",
    "run_pdc_write_leakage",
    "AttackMatrix",
    "PAPER_INJECTION_MATRIX",
    "PAPER_LEAKAGE_MATRIX",
    "run_attack_matrix",
    "run_injection_cell",
    "run_leakage_cell",
]
