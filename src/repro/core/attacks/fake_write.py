"""Fake write / read-write / delete result injection (Sections IV-A2..4).

These attacks need no forged payloads — only *favourable endorsers*.  The
malicious client routes its proposal to peers whose chaincode accepts the
malicious value (org1's ``< 15`` constraint, org3's absent constraint) and
around the victim whose chaincode would reject it (org2's ``> 10``).  The
chaincode-level policy is satisfied by the chosen endorsers, so the
validated transaction updates the private world state at *every* member —
including the victim, whose business logic is thereby violated.
"""

from __future__ import annotations

from typing import Sequence

from repro.chaincode.contracts import (
    ForgedReadWriteContract,
    UnconstrainedWriteContract,
)
from repro.common.errors import ReproError
from repro.core.attacks.base import (
    AttackReport,
    install_constrained_contracts,
    seed_private_value,
)
from repro.network.presets import TestNetwork
from repro.protocol.transaction import ValidationCode


def _submit_attack(net, client, function, args, transient, endorsers):
    return client.submit_transaction(
        net.chaincode_id, function, args, transient=transient, endorsing_peers=endorsers
    )


def run_fake_write_injection(
    net: TestNetwork,
    malicious_org_nums: Sequence[int] = (1, 3),
    victim_org_num: int = 2,
    seed_value: bytes = b"12",
    malicious_value: bytes = b"5",
    key: str = "k1",
) -> AttackReport:
    """The Fig. 6 attack: write ``k1 = 5`` past org2's ``> 10`` constraint."""
    install_constrained_contracts(net)
    for org_num in malicious_org_nums:
        if org_num not in (1, 2):
            net.peer_of(org_num).install_chaincode(
                net.chaincode_id, UnconstrainedWriteContract()
            )
    seed_private_value(net, key, seed_value)

    client = net.client_of(malicious_org_nums[0])
    endorsers = [net.peer_of(n) for n in malicious_org_nums]
    try:
        result = _submit_attack(
            net, client, "set_private", [net.collection, key],
            {"value": malicious_value}, endorsers,
        )
    except ReproError as exc:
        return AttackReport(
            name="fake-write-result-injection",
            tx_type="write-only",
            succeeded=False,
            summary=f"attack transaction rejected before commit: {exc}",
            details={"error": str(exc)},
        )

    victim_value = net.peer_of(victim_org_num).query_private(
        net.chaincode_id, net.collection, key
    )
    succeeded = result.status is ValidationCode.VALID and victim_value == malicious_value
    return AttackReport(
        name="fake-write-result-injection",
        tx_type="write-only",
        succeeded=succeeded,
        summary=(
            f"victim org{victim_org_num}'s world state now holds "
            f"{malicious_value!r}, violating its business constraint"
            if succeeded
            else f"transaction flagged {result.status.value}; victim still holds "
            f"{victim_value!r}"
        ),
        details={
            "tx_id": result.tx_id,
            "status": result.status.value,
            "victim_value": victim_value,
            "endorsing_orgs": [p.msp_id for p in endorsers],
        },
    )


def run_fake_read_write_injection(
    net: TestNetwork,
    malicious_org_nums: Sequence[int] = (1, 3),
    victim_org_num: int = 2,
    seed_value: bytes = b"12",
    fake_current: int = 3,
    delta: int = 2,
    key: str = "k1",
) -> AttackReport:
    """The §V-A3 attack: forge the read half of ``add_private``.

    The honest sum would be ``12 + 2 = 14`` (accepted by every org); the
    forged read of 3 drives the committed sum to ``5``, violating the
    victim's ``> 10`` constraint.
    """
    install_constrained_contracts(net)
    seed_private_value(net, key, seed_value)
    forged = ForgedReadWriteContract(fake_current_value=fake_current)
    for org_num in malicious_org_nums:
        net.peer_of(org_num).install_chaincode(net.chaincode_id, forged)

    client = net.client_of(malicious_org_nums[0])
    endorsers = [net.peer_of(n) for n in malicious_org_nums]
    expected = str(fake_current + delta).encode("utf-8")
    try:
        result = _submit_attack(
            net, client, "add_private", [net.collection, key, str(delta)], None, endorsers
        )
    except ReproError as exc:
        return AttackReport(
            name="fake-read-write-result-injection",
            tx_type="read-write",
            succeeded=False,
            summary=f"attack transaction rejected before commit: {exc}",
            details={"error": str(exc)},
        )

    victim_value = net.peer_of(victim_org_num).query_private(
        net.chaincode_id, net.collection, key
    )
    succeeded = result.status is ValidationCode.VALID and victim_value == expected
    return AttackReport(
        name="fake-read-write-result-injection",
        tx_type="read-write",
        succeeded=succeeded,
        summary=(
            f"forged read drove the committed sum to {expected!r} at the victim"
            if succeeded
            else f"transaction flagged {result.status.value}; victim still holds "
            f"{victim_value!r}"
        ),
        details={
            "tx_id": result.tx_id,
            "status": result.status.value,
            "victim_value": victim_value,
            "fake_current": fake_current,
            "delta": delta,
        },
    )


def run_fake_delete_injection(
    net: TestNetwork,
    malicious_org_nums: Sequence[int] = (1, 3),
    victim_org_num: int = 2,
    key: str = "k1",
) -> AttackReport:
    """The §V-A4 attack: delete ``k1`` although the victim forbids it.

    Setup follows the paper: ``k1 = 5`` (planted by the preceding fake
    write), so org1's delete guard ``< 15`` passes while the victim org2's
    ``> 10`` guard would reject the delete it never gets to endorse.
    """
    plant = run_fake_write_injection(
        net, malicious_org_nums=malicious_org_nums, victim_org_num=victim_org_num
    )
    if not plant.succeeded:
        # Without the planted k1=5 the delete-only scenario of the paper
        # cannot even be staged; under a collection-level policy this is
        # exactly the "attack fails" outcome of Table II.
        return AttackReport(
            name="fake-delete-result-injection",
            tx_type="delete-only",
            succeeded=False,
            summary=f"setup write was rejected ({plant.summary}); delete attack cannot proceed",
            details={"setup": plant.details},
        )

    client = net.client_of(malicious_org_nums[0])
    endorsers = [net.peer_of(n) for n in malicious_org_nums]
    try:
        result = _submit_attack(
            net, client, "del_private", [net.collection, key], {"current": b"5"}, endorsers
        )
    except ReproError as exc:
        return AttackReport(
            name="fake-delete-result-injection",
            tx_type="delete-only",
            succeeded=False,
            summary=f"attack transaction rejected before commit: {exc}",
            details={"error": str(exc)},
        )

    victim = net.peer_of(victim_org_num)
    victim_value = victim.query_private(net.chaincode_id, net.collection, key)
    victim_hash = victim.query_private_hash(net.chaincode_id, net.collection, key)
    succeeded = (
        result.status is ValidationCode.VALID
        and victim_value is None
        and victim_hash is None
    )
    return AttackReport(
        name="fake-delete-result-injection",
        tx_type="delete-only",
        succeeded=succeeded,
        summary=(
            "private key deleted at every member including the victim"
            if succeeded
            else f"transaction flagged {result.status.value}; victim still holds "
            f"{victim_value!r}"
        ),
        details={
            "tx_id": result.tx_id,
            "status": result.status.value,
            "victim_value": victim_value,
            "victim_hash_present": victim_hash is not None,
        },
    )
