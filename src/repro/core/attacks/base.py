"""Common scaffolding for the attack experiments of Section V.

Every attack driver returns an :class:`AttackReport` stating whether the
attack *achieved its goal* (not merely whether a transaction committed),
together with the evidence: transaction status, observed values at the
victim, and the violated invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chaincode.contracts import (
    ConstrainedPrivateAssetContract,
    greater_than,
    less_than,
)
from repro.network.presets import TestNetwork


@dataclass
class AttackReport:
    """Outcome of one attack run."""

    name: str
    tx_type: str  # "read-only" | "write-only" | "read-write" | "delete-only"
    succeeded: bool
    summary: str
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def mark(self) -> str:
        """The Table II cell symbol."""
        return "√" if self.succeeded else "×"

    def __str__(self) -> str:
        verdict = "SUCCEEDED" if self.succeeded else "FAILED"
        return f"[{verdict}] {self.name}: {self.summary}"


# The §V-A business constraints.
ORG1_CONSTRAINT = less_than(15)  # peer0.org1 requires k1.value < 15
ORG2_CONSTRAINT = greater_than(10)  # peer0.org2 (victim) requires k1.value > 10


def install_constrained_contracts(net: TestNetwork) -> None:
    """Install the §V-A per-org contracts on the member peers.

    org1 gets the ``< 15`` constraint, org2 the ``> 10`` constraint; other
    orgs are installed separately by each experiment (unconstrained or
    malicious contracts).
    """
    net.peer_of(1).install_chaincode(
        net.chaincode_id, ConstrainedPrivateAssetContract(ORG1_CONSTRAINT)
    )
    net.peer_of(2).install_chaincode(
        net.chaincode_id, ConstrainedPrivateAssetContract(ORG2_CONSTRAINT)
    )


def seed_private_value(net: TestNetwork, key: str, value: bytes) -> None:
    """Honestly write the initial PDC value through the member peers.

    Uses a write endorsed by the two member orgs — always policy-valid
    under the presets (MAJORITY of 3, 2OutOf5, and AND(org1,org2) alike).
    """
    client = net.client_of(1)
    client.submit_transaction(
        net.chaincode_id,
        "set_private",
        [net.collection, key],
        transient={"value": value},
        endorsing_peers=[net.peer_of(1), net.peer_of(2)],
    ).raise_for_status()
