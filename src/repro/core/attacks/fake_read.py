"""Fake read result injection (Section IV-A1, Fig. 5).

Malicious endorsers (member org1 and non-member org3 in the 3-org
prototype) install a customized chaincode that

1. obtains the genuine read-set entry ``(hash(key), version)`` via
   ``get_private_data_hash`` — legal at any peer — and
2. returns an agreed **fake value** in the ``payload`` field.

The malicious client endorses only at the colluders, assembles the
transaction and submits it.  Because read-only transactions are validated
solely against the chaincode-level policy (Use Case 2) and the version
check matches, the fabricated transaction commits as VALID on every peer
— including the honest victim's — and the blockchain now immutably
records a fake value for the private key.
"""

from __future__ import annotations

from typing import Sequence

from repro.chaincode.contracts import ConstrainedPrivateAssetContract, ForgedReadContract
from repro.common.errors import ReproError
from repro.core.attacks.base import (
    ORG2_CONSTRAINT,
    AttackReport,
    seed_private_value,
)
from repro.network.presets import TestNetwork
from repro.protocol.transaction import ValidationCode


def run_fake_read_injection(
    net: TestNetwork,
    malicious_org_nums: Sequence[int] = (1, 3),
    victim_org_num: int = 2,
    genuine_value: bytes = b"12",
    fake_value: bytes = b"999",
    key: str = "k1",
) -> AttackReport:
    """Execute the Fig. 5 attack on a fresh preset network."""
    # -- setup: honest world -------------------------------------------------
    net.peer_of(1).install_chaincode(net.chaincode_id, ConstrainedPrivateAssetContract())
    net.peer_of(victim_org_num).install_chaincode(
        net.chaincode_id, ConstrainedPrivateAssetContract(ORG2_CONSTRAINT)
    )
    seed_private_value(net, key, genuine_value)

    # -- setup: collusion -------------------------------------------------------
    forged = ForgedReadContract(fake_value=fake_value)
    for org_num in malicious_org_nums:
        net.peer_of(org_num).install_chaincode(net.chaincode_id, forged)

    # -- the attack ----------------------------------------------------------------
    malicious_client = net.client_of(malicious_org_nums[0])
    endorsers = [net.peer_of(n) for n in malicious_org_nums]
    try:
        result = malicious_client.submit_transaction(
            net.chaincode_id,
            "get_private",
            [net.collection, key],
            endorsing_peers=endorsers,
        )
    except ReproError as exc:
        return AttackReport(
            name="fake-read-result-injection",
            tx_type="read-only",
            succeeded=False,
            summary=f"attack transaction rejected before commit: {exc}",
            details={"error": str(exc)},
        )

    # -- verdict ---------------------------------------------------------------------
    victim = net.peer_of(victim_org_num)
    committed = victim.ledger.blockchain.find_transaction(result.tx_id)
    on_chain_payload = committed[0].payload.response.payload if committed else None
    flag = committed[1] if committed else None
    genuine_untouched = victim.query_private(net.chaincode_id, net.collection, key)

    succeeded = (
        result.status is ValidationCode.VALID
        and flag is ValidationCode.VALID
        and on_chain_payload == fake_value
    )
    return AttackReport(
        name="fake-read-result-injection",
        tx_type="read-only",
        succeeded=succeeded,
        summary=(
            "fabricated read committed as VALID with fake payload "
            f"{fake_value!r} (genuine value {genuine_value!r})"
            if succeeded
            else f"transaction flagged {result.status.value}; blockchain integrity held"
        ),
        details={
            "tx_id": result.tx_id,
            "status": result.status.value,
            "on_chain_payload": on_chain_payload,
            "genuine_value": genuine_untouched,
            "endorsing_orgs": [p.msp_id for p in endorsers],
        },
    )
