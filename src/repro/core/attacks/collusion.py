"""Collusion analysis: the 51% discussion of Section IV-A5, operationalized.

Under ``MAJORITY Endorsement`` the injection attacks need malicious peers
from 51% of the organizations.  Under ``NOutOf`` policies, far fewer can
suffice — the paper's example: with ``2OutOf(org1..org5)`` and PDC members
{org1, org2}, the two *non-members* org3+org4 satisfy the policy alone.

:func:`analyze_collusion` answers, for a deployed chaincode + collection:

* the minimum number of colluding organizations that can forge a valid
  PDC transaction at all, and
* whether **non-members alone** can do it (the worst case: zero insider
  collusion), and with how many orgs.

This is exact subset-minimisation over the policy, feasible because
consortium channels have few organizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence, TYPE_CHECKING

from repro.identity.identity import Certificate
from repro.policy.evaluator import PolicyEvaluator

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import ChannelConfig


@dataclass(frozen=True)
class CollusionReport:
    """Result of analysing one (chaincode, collection) pair."""

    chaincode_id: str
    collection: str
    policy_text: str
    member_orgs: tuple[str, ...]
    nonmember_orgs: tuple[str, ...]
    minimum_orgs: Optional[int]  # smallest satisfying org set, any orgs
    minimum_org_set: tuple[str, ...]
    nonmember_only_possible: bool
    minimum_nonmember_orgs: Optional[int]
    minimum_nonmember_set: tuple[str, ...]

    @property
    def requires_majority(self) -> bool:
        """Whether the attack needs peers from >50% of channel orgs."""
        total = len(self.member_orgs) + len(self.nonmember_orgs)
        if self.minimum_orgs is None:
            return True
        return self.minimum_orgs > total / 2

    def summary(self) -> str:
        if self.minimum_orgs is None:
            return (
                f"{self.chaincode_id}/{self.collection}: policy unsatisfiable by "
                f"channel peers"
            )
        lines = [
            f"{self.chaincode_id}/{self.collection}: policy {self.policy_text!r}",
            f"  minimum colluding orgs     : {self.minimum_orgs} "
            f"{sorted(self.minimum_org_set)}",
        ]
        if self.nonmember_only_possible:
            lines.append(
                f"  NON-MEMBERS ALONE SUFFICE  : {self.minimum_nonmember_orgs} "
                f"{sorted(self.minimum_nonmember_set)} — zero insider collusion needed"
            )
        else:
            lines.append("  non-members alone          : cannot satisfy the policy")
        return "\n".join(lines)


def _org_peer_certs(channel: "ChannelConfig", msp_ids: Sequence[str]) -> list[Certificate]:
    return [channel.organization(msp).enroll_peer().certificate for msp in msp_ids]


def minimum_satisfying_orgs(
    evaluator: PolicyEvaluator,
    policy_text: str,
    channel: "ChannelConfig",
    candidate_orgs: Sequence[str],
) -> Optional[tuple[str, ...]]:
    """The smallest subset of ``candidate_orgs`` whose peers satisfy the policy.

    Returns ``None`` when no subset (including all candidates) suffices.
    Exact search, smallest-first; consortium channels are small enough.
    """
    candidates = sorted(candidate_orgs)
    for size in range(1, len(candidates) + 1):
        for subset in combinations(candidates, size):
            signers = _org_peer_certs(channel, subset)
            if evaluator.evaluate(policy_text, signers):
                return subset
    return None


def analyze_collusion(
    channel: "ChannelConfig", chaincode_id: str, collection_name: str
) -> CollusionReport:
    """Analyse the endorsement policy governing a collection's transactions.

    Uses the policy that the **vulnerable** validation path applies — the
    chaincode-level policy (Use Case 2) — since that is what an attacker
    must satisfy for read-only transactions even when a collection-level
    policy exists.
    """
    definition = channel.chaincode(chaincode_id)
    config = definition.collection(collection_name)
    members = tuple(sorted(config.member_orgs()))
    nonmembers = tuple(sorted(set(channel.msp_ids()) - set(members)))
    evaluator = channel.evaluator()
    policy_text = definition.endorsement_policy

    best_any = minimum_satisfying_orgs(evaluator, policy_text, channel, channel.msp_ids())
    best_nonmember = minimum_satisfying_orgs(evaluator, policy_text, channel, nonmembers)

    return CollusionReport(
        chaincode_id=chaincode_id,
        collection=collection_name,
        policy_text=policy_text,
        member_orgs=members,
        nonmember_orgs=nonmembers,
        minimum_orgs=len(best_any) if best_any else None,
        minimum_org_set=best_any or (),
        nonmember_only_possible=best_nonmember is not None,
        minimum_nonmember_orgs=len(best_nonmember) if best_nonmember else None,
        minimum_nonmember_set=best_nonmember or (),
    )
