"""Reusable attack-operation building blocks for adversarial workloads.

The scripted drivers (``fake_read``/``fake_write``/``scenarios``) replay
the paper's §V experiments one at a time on a fixed preset.  The
deterministic simulation subsystem (:mod:`repro.simulation`) instead
interleaves *attack operations* with honest traffic on arbitrarily shaped
networks.  That needs three reusable pieces:

* :func:`expected_policy_ok` — a **spec-level oracle** for the
  policy-selection rules of ``validator_keylevel.go`` (Section II-B3 and
  Use Case 2): given which parts of the state a transaction touches and
  which certificates endorsed it, decide whether validation *should*
  accept it.  The simulator uses this both to label generated operations
  with their expected outcome and, independently, inside the invariant
  checkers — so a validator bug shows up as a disagreement.
* :func:`favourable_endorsers` — the §IV-A degree of freedom: a client
  picks an endorser set that satisfies the *chaincode-level* policy while
  excluding a victim organization (possibly using PDC non-members, who
  happily endorse write-only PDC transactions — Use Case 1).
* :func:`nonsatisfying_endorsers` — an endorser set that fails the
  applicable policy, for probing that validation actually rejects it.

Key-level ("state-based") endorsement policies are intentionally outside
this oracle: the simulated workloads never commit validation parameters,
so the applicable policies are fully determined by the chaincode and
collection definitions.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.chaincode.api import require_args
from repro.chaincode.contracts.pdc_contract import PrivateAssetContract
from repro.chaincode.stub import ChaincodeStub
from repro.common.errors import ChaincodeError
from repro.core.defense.features import FrameworkFeatures
from repro.identity.identity import Certificate

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import ChannelConfig
    from repro.peer.node import PeerNode


class ColludingPrivateAssetContract(PrivateAssetContract):
    """The honest PDC contract with the §IV-A1 forged read grafted in.

    Unlike :class:`~repro.chaincode.contracts.malicious.ForgedReadContract`
    (which *only* forges reads), this keeps every honest function intact —
    the realistic colluder: it behaves correctly for all traffic except
    ``get_private``, where it fetches the genuine ``(hash, version)`` via
    ``get_private_data_hash`` (works at non-members too) and returns the
    colluders' agreed fake value.
    """

    def __init__(self, fake_value: bytes) -> None:
        self._fake_value = fake_value

    def get_private(self, stub: ChaincodeStub, args: list) -> bytes:
        require_args(args, 2, "a collection and a key")
        collection, key = args
        digest = stub.get_private_data_hash(collection, key)
        if digest is None:
            raise ChaincodeError(f"no private data hash for key {key!r}")
        return self._fake_value


def expected_policy_ok(
    channel: "ChannelConfig",
    features: FrameworkFeatures,
    chaincode_id: str,
    certs: Sequence[Certificate],
    *,
    read_only: bool,
    has_public_writes: bool,
    collections_written: Iterable[str] = (),
    collections_touched: Iterable[str] = (),
) -> bool:
    """Spec-level answer to "does this endorser set satisfy validation?".

    Mirrors the policy-*selection* rules (not the implementation) of the
    validator: read-only transactions consult only the chaincode-level
    policy (plus, under New Feature 1, the collection-level policies of
    collections read); writes consult the collection-level policy per
    written collection when one is defined, falling back to the
    chaincode-level policy; the supplemental defense first discards
    endorsements from organizations that are not members of every touched
    collection.
    """
    evaluator = channel.evaluator()
    definition = channel.chaincode(chaincode_id)
    touched = sorted(set(collections_touched) | set(collections_written))
    signers = list(certs)

    if touched and features.filter_nonmember_endorsements:
        member_orgs: Optional[set] = None
        for name in touched:
            orgs = channel.collection(chaincode_id, name).member_orgs()
            member_orgs = orgs if member_orgs is None else member_orgs & orgs
        signers = [c for c in signers if c.msp_id in (member_orgs or set())]

    chaincode_policy_needed = False
    extra_policies: list[str] = []

    if read_only:
        chaincode_policy_needed = True
        if features.collection_policy_on_reads:
            for name in touched:
                config = channel.collection(chaincode_id, name)
                if config.endorsement_policy is not None:
                    extra_policies.append(config.endorsement_policy)
    else:
        if has_public_writes:
            chaincode_policy_needed = True
        for name in sorted(set(collections_written)):
            config = channel.collection(chaincode_id, name)
            if config.endorsement_policy is not None:
                extra_policies.append(config.endorsement_policy)
            else:
                chaincode_policy_needed = True

    if chaincode_policy_needed and not evaluator.evaluate(
        definition.endorsement_policy, signers
    ):
        return False
    for policy_text in extra_policies:
        if not evaluator.evaluate(policy_text, signers):
            return False
    return True


def _certificates(peers: Sequence["PeerNode"]) -> list[Certificate]:
    return [p.certificate for p in peers]


def _policy_ok_for(
    channel: "ChannelConfig",
    features: FrameworkFeatures,
    chaincode_id: str,
    peers: Sequence["PeerNode"],
    collections_written: Iterable[str],
) -> bool:
    return expected_policy_ok(
        channel,
        features,
        chaincode_id,
        _certificates(peers),
        read_only=False,
        has_public_writes=False,
        collections_written=tuple(collections_written),
        collections_touched=tuple(collections_written),
    )


def favourable_endorsers(
    channel: "ChannelConfig",
    features: FrameworkFeatures,
    chaincode_id: str,
    collection: str,
    peers: Sequence["PeerNode"],
    rng: random.Random,
    avoid_org: str,
) -> Optional[list["PeerNode"]]:
    """A minimal-ish endorser set for a PDC write that excludes the victim.

    Grows a randomly ordered set of peers — one per organization, never
    from ``avoid_org`` — until the applicable write policy is satisfied.
    Returns ``None`` when no subset excluding the victim can satisfy it
    (e.g. a collection-level ``AND`` naming the victim), which is exactly
    when the §IV-A attack is *not* available to the adversary.
    """
    by_org: dict[str, "PeerNode"] = {}
    for peer in peers:
        if peer.msp_id != avoid_org:
            by_org.setdefault(peer.msp_id, peer)
    candidates = [by_org[msp] for msp in sorted(by_org)]
    rng.shuffle(candidates)
    chosen: list["PeerNode"] = []
    for peer in candidates:
        chosen.append(peer)
        if _policy_ok_for(channel, features, chaincode_id, chosen, [collection]):
            return chosen
    return None


def nonsatisfying_endorsers(
    channel: "ChannelConfig",
    features: FrameworkFeatures,
    chaincode_id: str,
    collection: str,
    peers: Sequence["PeerNode"],
    rng: random.Random,
    attempts: int = 8,
) -> Optional[list["PeerNode"]]:
    """A non-empty endorser set that *fails* the applicable write policy.

    Tries random single peers, then random pairs.  Returns ``None`` when
    every probed subset satisfies the policy (e.g. a permissive ``OR``),
    in which case the caller should skip the probe operation.
    """
    pool = list(peers)
    for size in (1, 2):
        if len(pool) < size:
            continue
        for _ in range(attempts):
            chosen = rng.sample(pool, size)
            if not _policy_ok_for(channel, features, chaincode_id, chosen, [collection]):
                return chosen
    return None
