"""The block cutter: batching envelopes into block-sized groups.

Orderers "collect a pre-defined number of transactions or wait a
pre-defined time" (Section II-B2) before cutting a block.  Time is modeled
in ticks of the ordering loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocol.transaction import TransactionEnvelope

DEFAULT_BATCH_SIZE = 10
DEFAULT_BATCH_TIMEOUT_TICKS = 2


@dataclass
class BlockCutter:
    """Accumulates envelopes; cuts on size or timeout."""

    batch_size: int = DEFAULT_BATCH_SIZE
    batch_timeout_ticks: int = DEFAULT_BATCH_TIMEOUT_TICKS
    _pending: list[TransactionEnvelope] = field(default_factory=list)
    _ticks_waiting: int = 0

    def add(self, envelope: TransactionEnvelope) -> list[tuple[TransactionEnvelope, ...]]:
        """Add an envelope; returns zero or more cut batches.

        Normally at most one batch is cut per add, but if ``batch_size``
        was lowered while envelopes were pending (dynamic reconfiguration)
        the backlog is drained as multiple full batches.
        """
        self._pending.append(envelope)
        batches: list[tuple[TransactionEnvelope, ...]] = []
        while len(self._pending) >= self.batch_size:
            batches.append(self._cut(self.batch_size))
        return batches

    def tick(self) -> list[tuple[TransactionEnvelope, ...]]:
        """Advance the batch timer; cut on expiry."""
        if not self._pending:
            self._ticks_waiting = 0
            return []
        self._ticks_waiting += 1
        if self._ticks_waiting >= self.batch_timeout_ticks:
            return [self._cut()]
        return []

    def flush(self) -> list[tuple[TransactionEnvelope, ...]]:
        """Force-cut whatever is pending, draining in ``batch_size`` batches.

        A backlog larger than ``batch_size`` (possible when callers submit
        in bulk before flushing) must never produce an oversized block —
        the size limit is a block invariant, not a steady-state heuristic.
        """
        batches: list[tuple[TransactionEnvelope, ...]] = []
        while self._pending:
            batches.append(self._cut(self.batch_size))
        return batches

    def _cut(self, count: int | None = None) -> tuple[TransactionEnvelope, ...]:
        if count is None or count >= len(self._pending):
            batch = tuple(self._pending)
            self._pending = []
        else:
            batch = tuple(self._pending[:count])
            self._pending = self._pending[count:]
        self._ticks_waiting = 0
        return batch

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def peek_pending(self) -> tuple[TransactionEnvelope, ...]:
        """The accumulated-but-uncut envelopes (observability only)."""
        return tuple(self._pending)
