"""A deterministic Raft implementation for the ordering service.

Fabric's ordering service runs etcd/raft: orderers agree on the *sequence
of blocks* without ever validating transaction content.  We implement the
core of the Raft protocol (leader election, log replication, commit-index
advancement — Ongaro & Ousterhout 2014) over a simulated message-passing
network driven by discrete ticks.

Determinism: election timeouts are staggered by node index instead of
randomized, so the same cluster always elects the same leader in the same
number of ticks and simulator runs are exactly reproducible.  Message
delivery order is FIFO per destination.  Crash/partition injection is
supported for tests (``stop``/``restart``/``partition``).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.errors import OrderingError

HEARTBEAT_INTERVAL = 3
ELECTION_TIMEOUT_BASE = 10
ELECTION_TIMEOUT_STAGGER = 4


class RaftState(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass(frozen=True)
class LogEntry:
    term: int
    payload: Any


@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate_id: int
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class RequestVoteReply:
    term: int
    voter_id: int
    granted: bool


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader_id: int
    prev_log_index: int
    prev_log_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int


@dataclass(frozen=True)
class AppendEntriesReply:
    term: int
    follower_id: int
    success: bool
    match_index: int


@dataclass
class _Inbox:
    messages: list[tuple[int, Any]] = field(default_factory=list)  # (sender, message)


class RaftNode:
    """One Raft participant.  Log indices are 1-based, per the paper."""

    def __init__(
        self, node_id: int, cluster_size: int, rng: Optional[random.Random] = None
    ) -> None:
        self.node_id = node_id
        self.cluster_size = cluster_size
        self._rng = rng
        self._timeout = self._sample_timeout()
        self.state = RaftState.FOLLOWER
        self.current_term = 0
        self.voted_for: Optional[int] = None
        self.log: list[LogEntry] = []
        self.commit_index = 0
        self.last_applied = 0
        self.next_index: dict[int, int] = {}
        self.match_index: dict[int, int] = {}
        self.ticks_since_heartbeat = 0
        self.votes_received: set[int] = set()
        self.alive = True

    # -- log helpers --------------------------------------------------------
    def last_log_index(self) -> int:
        return len(self.log)

    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def term_at(self, index: int) -> int:
        if index == 0:
            return 0
        return self.log[index - 1].term

    def _sample_timeout(self) -> int:
        """Per-node election timeout.

        Without an RNG, timeouts are staggered by node index so the same
        cluster always elects the same leader (the fully deterministic
        default).  With a seeded RNG — Raft-paper-style randomized
        timeouts — the draw itself is seeded, so runs remain reproducible
        while elections are no longer index-biased.
        """
        base = ELECTION_TIMEOUT_BASE + self.node_id * ELECTION_TIMEOUT_STAGGER
        if self._rng is None:
            return base
        span = ELECTION_TIMEOUT_STAGGER * max(self.cluster_size, 2)
        return ELECTION_TIMEOUT_BASE + self._rng.randrange(span)

    def election_timeout(self) -> int:
        return self._timeout

    # -- state transitions ------------------------------------------------------
    def become_follower(self, term: int) -> None:
        self.state = RaftState.FOLLOWER
        self.current_term = term
        self.voted_for = None
        self.votes_received = set()
        self.ticks_since_heartbeat = 0
        self._timeout = self._sample_timeout()

    def become_candidate(self) -> RequestVote:
        self.state = RaftState.CANDIDATE
        self.current_term += 1
        self.voted_for = self.node_id
        self.votes_received = {self.node_id}
        self.ticks_since_heartbeat = 0
        # Re-draw so split votes break differently on the retry (no-op in
        # the deterministic staggered mode).
        self._timeout = self._sample_timeout()
        return RequestVote(
            term=self.current_term,
            candidate_id=self.node_id,
            last_log_index=self.last_log_index(),
            last_log_term=self.last_log_term(),
        )

    def become_leader(self) -> None:
        self.state = RaftState.LEADER
        self.next_index = {
            peer: self.last_log_index() + 1
            for peer in range(self.cluster_size)
            if peer != self.node_id
        }
        self.match_index = {peer: 0 for peer in range(self.cluster_size) if peer != self.node_id}
        self.ticks_since_heartbeat = 0


class RaftCluster:
    """A cluster of Raft nodes plus the simulated network between them.

    ``on_commit(payload)`` fires exactly once per committed log entry, in
    log order, when the *leader* applies it — this is where the ordering
    service turns an agreed entry into a delivered block.
    """

    def __init__(
        self,
        size: int,
        on_commit: Optional[Callable[[Any], None]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if size < 1:
            raise OrderingError("a Raft cluster needs at least one node")
        self.nodes = [RaftNode(i, size, rng=rng) for i in range(size)]
        self._inboxes = [_Inbox() for _ in range(size)]
        self._on_commit = on_commit
        self._partitioned: set[int] = set()
        self.ticks_elapsed = 0

    # -- fault injection ----------------------------------------------------
    def stop(self, node_id: int) -> None:
        self.nodes[node_id].alive = False

    def restart(self, node_id: int) -> None:
        node = self.nodes[node_id]
        node.alive = True
        node.state = RaftState.FOLLOWER
        node.ticks_since_heartbeat = 0

    def partition(self, node_ids: set[int]) -> None:
        """Nodes in ``node_ids`` can only talk to each other."""
        self._partitioned = set(node_ids)

    def heal_partition(self) -> None:
        self._partitioned = set()

    def _can_talk(self, a: int, b: int) -> bool:
        if not self._partitioned:
            return True
        return (a in self._partitioned) == (b in self._partitioned)

    # -- network ----------------------------------------------------------------
    def _send(self, sender: int, target: int, message: Any) -> None:
        if self.nodes[target].alive and self._can_talk(sender, target):
            self._inboxes[target].messages.append((sender, message))

    def _broadcast(self, sender: int, message: Any) -> None:
        for target in range(len(self.nodes)):
            if target != sender:
                self._send(sender, target, message)

    # -- main loop -----------------------------------------------------------------
    def leader(self) -> Optional[RaftNode]:
        leaders = [n for n in self.nodes if n.alive and n.state is RaftState.LEADER]
        if not leaders:
            return None
        # With partitions there may briefly be two leaders; the one with
        # the highest term is authoritative.
        return max(leaders, key=lambda n: n.current_term)

    def propose(self, payload: Any) -> None:
        """Append a payload at the current leader (electing one if needed)."""
        leader = self.leader()
        if leader is None:
            self.run_until(lambda: self.leader() is not None, max_ticks=1000)
            leader = self.leader()
            if leader is None:
                raise OrderingError("no Raft leader could be elected")
        leader.log.append(LogEntry(term=leader.current_term, payload=payload))

    def tick(self) -> None:
        """One time step: timers fire, then all queued messages deliver."""
        self.ticks_elapsed += 1
        for node in self.nodes:
            if node.alive:
                self._tick_node(node)
        # Deliver everything queued this tick (one network round).
        for node_id, inbox in enumerate(self._inboxes):
            pending, inbox.messages = inbox.messages, []
            node = self.nodes[node_id]
            if not node.alive:
                continue
            for sender, message in pending:
                self._handle(node, sender, message)
        self._advance_commit()

    def run_until(self, predicate: Callable[[], bool], max_ticks: int = 2000) -> None:
        for _ in range(max_ticks):
            if predicate():
                return
            self.tick()
        if not predicate():
            raise OrderingError(f"condition not reached within {max_ticks} ticks")

    def replicate_and_commit(self, payload: Any, max_ticks: int = 2000) -> None:
        """Propose and run until the entry is committed and applied."""
        self.propose(payload)
        leader = self.leader()
        assert leader is not None
        target = leader.last_log_index()
        self.run_until(
            lambda: leader.alive and leader.last_applied >= target, max_ticks=max_ticks
        )

    # -- per-node timers --------------------------------------------------------------
    def _tick_node(self, node: RaftNode) -> None:
        if node.state is RaftState.LEADER:
            node.ticks_since_heartbeat += 1
            if node.ticks_since_heartbeat >= HEARTBEAT_INTERVAL:
                node.ticks_since_heartbeat = 0
                self._send_append_entries(node)
            return
        node.ticks_since_heartbeat += 1
        if node.ticks_since_heartbeat >= node.election_timeout():
            request = node.become_candidate()
            if node.cluster_size == 1:
                node.become_leader()
            else:
                self._broadcast(node.node_id, request)

    def _send_append_entries(self, leader: RaftNode) -> None:
        for peer in range(leader.cluster_size):
            if peer == leader.node_id:
                continue
            next_idx = leader.next_index.get(peer, leader.last_log_index() + 1)
            prev_index = next_idx - 1
            entries = tuple(leader.log[next_idx - 1 :])
            self._send(
                leader.node_id,
                peer,
                AppendEntries(
                    term=leader.current_term,
                    leader_id=leader.node_id,
                    prev_log_index=prev_index,
                    prev_log_term=leader.term_at(prev_index),
                    entries=entries,
                    leader_commit=leader.commit_index,
                ),
            )

    # -- message handlers ----------------------------------------------------------------
    def _handle(self, node: RaftNode, sender: int, message: Any) -> None:
        if isinstance(message, RequestVote):
            self._handle_request_vote(node, message)
        elif isinstance(message, RequestVoteReply):
            self._handle_vote_reply(node, message)
        elif isinstance(message, AppendEntries):
            self._handle_append_entries(node, message)
        elif isinstance(message, AppendEntriesReply):
            self._handle_append_reply(node, message)

    def _handle_request_vote(self, node: RaftNode, msg: RequestVote) -> None:
        if msg.term > node.current_term:
            node.become_follower(msg.term)
        granted = False
        if msg.term == node.current_term and node.voted_for in (None, msg.candidate_id):
            log_ok = (msg.last_log_term, msg.last_log_index) >= (
                node.last_log_term(),
                node.last_log_index(),
            )
            if log_ok:
                granted = True
                node.voted_for = msg.candidate_id
                node.ticks_since_heartbeat = 0
        self._send(
            node.node_id,
            msg.candidate_id,
            RequestVoteReply(term=node.current_term, voter_id=node.node_id, granted=granted),
        )

    def _handle_vote_reply(self, node: RaftNode, msg: RequestVoteReply) -> None:
        if msg.term > node.current_term:
            node.become_follower(msg.term)
            return
        if node.state is not RaftState.CANDIDATE or msg.term < node.current_term:
            return
        if msg.granted:
            node.votes_received.add(msg.voter_id)
            if len(node.votes_received) > node.cluster_size // 2:
                node.become_leader()
                self._send_append_entries(node)

    def _handle_append_entries(self, node: RaftNode, msg: AppendEntries) -> None:
        if msg.term > node.current_term or (
            msg.term == node.current_term and node.state is not RaftState.FOLLOWER
        ):
            node.become_follower(msg.term)
        if msg.term < node.current_term:
            self._send(
                node.node_id,
                msg.leader_id,
                AppendEntriesReply(
                    term=node.current_term,
                    follower_id=node.node_id,
                    success=False,
                    match_index=0,
                ),
            )
            return
        node.ticks_since_heartbeat = 0
        # Consistency check on the previous entry.
        if msg.prev_log_index > node.last_log_index() or (
            msg.prev_log_index > 0 and node.term_at(msg.prev_log_index) != msg.prev_log_term
        ):
            self._send(
                node.node_id,
                msg.leader_id,
                AppendEntriesReply(
                    term=node.current_term,
                    follower_id=node.node_id,
                    success=False,
                    match_index=0,
                ),
            )
            return
        # Append / overwrite conflicting suffix.
        index = msg.prev_log_index
        for entry in msg.entries:
            index += 1
            if index <= node.last_log_index():
                if node.term_at(index) != entry.term:
                    del node.log[index - 1 :]
                    node.log.append(entry)
            else:
                node.log.append(entry)
        if msg.leader_commit > node.commit_index:
            node.commit_index = min(msg.leader_commit, node.last_log_index())
        self._send(
            node.node_id,
            msg.leader_id,
            AppendEntriesReply(
                term=node.current_term,
                follower_id=node.node_id,
                success=True,
                match_index=msg.prev_log_index + len(msg.entries),
            ),
        )

    def _handle_append_reply(self, node: RaftNode, msg: AppendEntriesReply) -> None:
        if msg.term > node.current_term:
            node.become_follower(msg.term)
            return
        if node.state is not RaftState.LEADER:
            return
        if msg.success:
            node.match_index[msg.follower_id] = max(
                node.match_index.get(msg.follower_id, 0), msg.match_index
            )
            node.next_index[msg.follower_id] = node.match_index[msg.follower_id] + 1
        else:
            node.next_index[msg.follower_id] = max(1, node.next_index.get(msg.follower_id, 1) - 1)

    # -- commit-index advancement -------------------------------------------------------------
    def _advance_commit(self) -> None:
        for node in self.nodes:
            if not node.alive:
                continue
            if node.state is RaftState.LEADER:
                for candidate in range(node.last_log_index(), node.commit_index, -1):
                    if node.term_at(candidate) != node.current_term:
                        continue
                    replicas = 1 + sum(
                        1 for m in node.match_index.values() if m >= candidate
                    )
                    if replicas > node.cluster_size // 2:
                        node.commit_index = candidate
                        break
            self._apply(node)

    def _apply(self, node: RaftNode) -> None:
        while node.last_applied < node.commit_index:
            node.last_applied += 1
            if node.state is RaftState.LEADER and self._on_commit is not None:
                self._on_commit(node.log[node.last_applied - 1].payload)
