"""The ordering service: Raft-replicated block creation and delivery.

Orderers bundle submitted envelopes into blocks **without validating
transaction content** (Section II-B2) — a property the paper's attacks
rely on: a fabricated-but-well-formed transaction is ordered like any
other.  Each cut batch is replicated through the Raft cluster; once the
cluster commits it, the service seals it into a hash-chained block and
delivers it to every registered peer.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.common.errors import OrderingError
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.orderer.block_cutter import BlockCutter
from repro.orderer.raft import RaftCluster
from repro.protocol.transaction import TransactionEnvelope

BlockDeliveryHandler = Callable[[Block], Any]


class OrderingService:
    """Front-end over a Raft cluster of orderer nodes."""

    def __init__(
        self,
        cluster_size: int = 3,
        batch_size: int = 10,
        batch_timeout_ticks: int = 2,
        raft_rng: Optional[random.Random] = None,
    ) -> None:
        self._cutter = BlockCutter(batch_size=batch_size, batch_timeout_ticks=batch_timeout_ticks)
        self._cluster = RaftCluster(
            size=cluster_size, on_commit=self._on_raft_commit, rng=raft_rng
        )
        self._delivery_handlers: list[BlockDeliveryHandler] = []
        self._next_block_number = 0
        self._prev_hash = GENESIS_PREV_HASH
        self._delivered_batch_ids: set[int] = set()
        self._batch_counter = 0
        self._delivered_blocks: list[Block] = []
        self.blocks_delivered = 0

    @property
    def raft(self) -> RaftCluster:
        """The underlying cluster (exposed for fault-injection tests)."""
        return self._cluster

    @property
    def pending_count(self) -> int:
        """Envelopes accumulated but not yet cut into a block."""
        return self._cutter.pending_count

    @property
    def delivered_blocks(self) -> tuple[Block, ...]:
        """Every block delivered so far, in order (the channel backlog)."""
        return tuple(self._delivered_blocks)

    def register_delivery(self, handler: BlockDeliveryHandler, replay: bool = True) -> None:
        """Subscribe a peer's ``deliver_block`` to new blocks.

        With ``replay`` (the default) blocks already ordered are replayed
        first, so a peer joining the channel late catches up from block 0
        — Fabric's deliver service behaves the same way.  The event
        runtime's dispatcher registers with ``replay=False``: the peers it
        fans out to already received the backlog directly.
        """
        if replay:
            for block in self._delivered_blocks:
                handler(block)
        self._delivery_handlers.append(handler)

    def clear_delivery_handlers(self) -> None:
        """Drop every subscriber (used when a runtime takes over delivery)."""
        self._delivery_handlers.clear()

    # -- ordering phase -----------------------------------------------------
    def submit(self, envelope: TransactionEnvelope) -> None:
        """Accept an envelope; content is *not* validated, only well-formedness."""
        if not envelope.tx_id:
            raise OrderingError("envelope missing tx id")
        for batch in self._cutter.add(envelope):
            self._order_batch(batch)

    def tick(self) -> None:
        """Advance batch timers (cuts on timeout)."""
        for batch in self._cutter.tick():
            self._order_batch(batch)

    def flush(self) -> None:
        """Cut and order whatever is pending — used to finish a scenario."""
        for batch in self._cutter.flush():
            self._order_batch(batch)

    # -- consensus + delivery --------------------------------------------------
    def _order_batch(self, batch: tuple[TransactionEnvelope, ...]) -> None:
        self._batch_counter += 1
        self._cluster.replicate_and_commit((self._batch_counter, batch))

    def _on_raft_commit(self, payload: Any) -> None:
        batch_id, batch = payload
        if batch_id in self._delivered_batch_ids:
            # Leadership changes can re-apply entries at a new leader;
            # delivery is exactly-once per batch.
            return
        self._delivered_batch_ids.add(batch_id)
        block = Block.create(
            number=self._next_block_number, prev_hash=self._prev_hash, transactions=batch
        )
        self._next_block_number += 1
        self._prev_hash = block.header.block_hash()
        self._delivered_blocks.append(block)
        self.blocks_delivered += 1
        for handler in self._delivery_handlers:
            handler(block)
