"""The ordering service: Raft-replicated block creation and delivery.

Orderers bundle submitted envelopes into blocks **without validating
transaction content** (Section II-B2) — a property the paper's attacks
rely on: a fabricated-but-well-formed transaction is ordered like any
other.  Each cut batch is replicated through the Raft cluster; once the
cluster commits it, the service seals it into a hash-chained block and
delivers it to every registered peer.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.common.errors import OrderingError, PrunedBacklogError
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.orderer.block_cutter import BlockCutter
from repro.orderer.raft import RaftCluster
from repro.protocol.transaction import TransactionEnvelope

BlockDeliveryHandler = Callable[[Block], Any]


class OrderingService:
    """Front-end over a Raft cluster of orderer nodes."""

    def __init__(
        self,
        cluster_size: int = 3,
        batch_size: int = 10,
        batch_timeout_ticks: int = 2,
        raft_rng: Optional[random.Random] = None,
        reorderer: Optional[Any] = None,
    ) -> None:
        self._cutter = BlockCutter(batch_size=batch_size, batch_timeout_ticks=batch_timeout_ticks)
        self._cluster = RaftCluster(
            size=cluster_size, on_commit=self._on_raft_commit, rng=raft_rng
        )
        # Optional conflict-aware pipeline (repro.orderer.reorder) run on
        # every cut batch before consensus: may reorder the batch and
        # divert provably doomed envelopes to the early-abort handlers.
        self._reorderer = reorderer
        self._early_aborts: dict[str, tuple[str, Optional[int]]] = {}
        self._abort_handlers: list[Callable[[TransactionEnvelope, str, Optional[int]], Any]] = []
        self._delivery_handlers: list[BlockDeliveryHandler] = []
        self._next_block_number = 0
        self._prev_hash = GENESIS_PREV_HASH
        self._delivered_batch_ids: set[int] = set()
        self._batch_counter = 0
        self._delivered_blocks: list[Block] = []
        # Cold-archived prefix of the backlog: blocks every peer has sealed
        # a snapshot past.  ``_backlog_offset`` is the number of the first
        # block still in the hot list.
        self._archived_blocks: list[Block] = []
        self._backlog_offset = 0
        self.blocks_delivered = 0

    @property
    def raft(self) -> RaftCluster:
        """The underlying cluster (exposed for fault-injection tests)."""
        return self._cluster

    @property
    def reorderer(self) -> Optional[Any]:
        """The conflict-aware pipeline, or ``None`` when reorder is off."""
        return self._reorderer

    def on_early_abort(
        self, handler: Callable[[TransactionEnvelope, str, Optional[int]], Any]
    ) -> None:
        """Subscribe to early aborts: ``handler(envelope, reason, conflict_block)``."""
        self._abort_handlers.append(handler)

    def early_abort_info(self, tx_id: str) -> Optional[tuple[str, Optional[int]]]:
        """``(reason, conflict_block)`` if ``tx_id`` was early-aborted, else None."""
        return self._early_aborts.get(tx_id)

    @property
    def pending_count(self) -> int:
        """Envelopes accumulated but not yet cut into a block."""
        return self._cutter.pending_count

    @property
    def delivered_blocks(self) -> tuple[Block, ...]:
        """Every block delivered so far, in order — archived + hot.

        Audit/invariant surface: the full sequence regardless of pruning.
        Copies the whole history; delivery paths should use the
        O(missed-blocks) :meth:`blocks_since` cursor instead.
        """
        return tuple(self._archived_blocks) + tuple(self._delivered_blocks)

    @property
    def delivered_count(self) -> int:
        """Total blocks delivered so far (archived + hot), O(1)."""
        return self._backlog_offset + len(self._delivered_blocks)

    @property
    def backlog_offset(self) -> int:
        """Number of the first block still in the hot backlog."""
        return self._backlog_offset

    def blocks_since(self, height: int) -> list[Block]:
        """The delivery backlog for a consumer already at ``height``.

        O(missed blocks): slices only the hot list.  Raises
        :class:`PrunedBacklogError` when ``height`` predates the pruned
        prefix — such a consumer must bootstrap from a state snapshot.
        """
        if height < 0:
            raise OrderingError(f"negative backlog height {height}")
        if height < self._backlog_offset:
            raise PrunedBacklogError(height, self._backlog_offset)
        return self._delivered_blocks[height - self._backlog_offset :]

    def block_at(self, number: int) -> Block:
        """A delivered block by number, archived or hot."""
        if number < self._backlog_offset:
            return self._archived_blocks[number]
        return self._delivered_blocks[number - self._backlog_offset]

    def prune_delivered(self, height: int) -> int:
        """Archive hot backlog blocks below ``height``; returns the count.

        A move, not a delete: full-history replay (``register_delivery``
        with ``replay=True``, audits, invariant checks) still works; only
        the hot cursor window shrinks.  Callers prune to the minimum
        snapshot height sealed across all registered peers, so no live
        consumer's cursor can fall below the offset.
        """
        target = min(height, self.delivered_count)
        if target <= self._backlog_offset:
            return 0
        count = target - self._backlog_offset
        self._archived_blocks.extend(self._delivered_blocks[:count])
        del self._delivered_blocks[:count]
        self._backlog_offset = target
        return count

    def register_delivery(self, handler: BlockDeliveryHandler, replay: bool = True) -> None:
        """Subscribe a peer's ``deliver_block`` to new blocks.

        With ``replay`` (the default) blocks already ordered are replayed
        first — archived prefix included — so a peer joining the channel
        late catches up from block 0; Fabric's deliver service behaves
        the same way.  The event runtime's dispatcher registers with
        ``replay=False``: the peers it fans out to already received the
        backlog directly.
        """
        if replay:
            for block in self._archived_blocks:
                handler(block)
            for block in self._delivered_blocks:
                handler(block)
        self._delivery_handlers.append(handler)

    def clear_delivery_handlers(self) -> None:
        """Drop every subscriber (used when a runtime takes over delivery)."""
        self._delivery_handlers.clear()

    # -- ordering phase -----------------------------------------------------
    def submit(self, envelope: TransactionEnvelope) -> None:
        """Accept an envelope; content is *not* validated, only well-formedness."""
        if not envelope.tx_id:
            raise OrderingError("envelope missing tx id")
        for batch in self._cutter.add(envelope):
            self._process_batch(batch)

    def tick(self) -> None:
        """Advance batch timers (cuts on timeout)."""
        for batch in self._cutter.tick():
            self._process_batch(batch)

    def flush(self) -> None:
        """Cut and order whatever is pending — used to finish a scenario."""
        for batch in self._cutter.flush():
            self._process_batch(batch)

    # -- consensus + delivery --------------------------------------------------
    def _process_batch(self, batch: tuple[TransactionEnvelope, ...]) -> None:
        """Run the (optional) conflict-aware pipeline, then order the batch.

        The surviving batch is ordered and delivered *before* the abort
        handlers fire, so a handler looking up the conflicting block (to
        align abort timing with that block's commit) finds it in flight.
        """
        if self._reorderer is None:
            self._order_batch(batch)
            return
        emitted, aborted = self._reorderer.process_batch(batch, self._next_block_number)
        if emitted:
            self._order_batch(emitted)
        for envelope, reason, conflict_block in aborted:
            self._early_aborts[envelope.tx_id] = (reason, conflict_block)
            for handler in self._abort_handlers:
                handler(envelope, reason, conflict_block)

    def _order_batch(self, batch: tuple[TransactionEnvelope, ...]) -> None:
        self._batch_counter += 1
        self._cluster.replicate_and_commit((self._batch_counter, batch))

    def _on_raft_commit(self, payload: Any) -> None:
        batch_id, batch = payload
        if batch_id in self._delivered_batch_ids:
            # Leadership changes can re-apply entries at a new leader;
            # delivery is exactly-once per batch.
            return
        self._delivered_batch_ids.add(batch_id)
        block = Block.create(
            number=self._next_block_number, prev_hash=self._prev_hash, transactions=batch
        )
        self._next_block_number += 1
        self._prev_hash = block.header.block_hash()
        self._delivered_blocks.append(block)
        self.blocks_delivered += 1
        for handler in self._delivery_handlers:
            handler(block)
