"""Conflict-aware ordering: intra-block reordering and early abort.

Under hot-key contention most ordered transactions die at MVCC
validation: they were endorsed against a state version that another
transaction — earlier in the same block or in an already-cut block —
has since overwritten.  Unlike real Fabric, this reproduction's
:class:`~repro.protocol.transaction.TransactionEnvelope` carries its
read/write sets in the clear (``payload.results``), so the ordering
service can see the conflicts *before* sealing a block, exactly the
opening Fabric++ (Sharma et al., SIGMOD'19) exploits:

1. **Reorder within the batch.**  Build the conflict graph over the
   batch — a ``reads-before-writes`` edge for every reader of a key
   another transaction writes (so the reader keeps its snapshot), and an
   arrival-order ``write-write`` edge between writers of the same key
   (so last-writer-wins is preserved) — break cycles with a greedy
   feedback-vertex heuristic, and emit a topological order that lets the
   maximum number of transactions survive intra-block MVCC.
2. **Early-abort the provably doomed.**  A transaction whose read
   versions are already stale against the orderer's delivered-write
   shadow — or that loses a read-modify-write race no order can resolve
   — would be flagged ``MVCC_READ_CONFLICT``/``PHANTOM_READ_CONFLICT``
   by every peer in *any* block position.  The pipeline drops it from
   the batch and surfaces :data:`~repro.protocol.transaction.\
ValidationCode.ORDERER_EARLY_ABORT` to the client, which re-endorses
   through the normal retry path without the transaction ever occupying
   block space or validation work.

Soundness is the hard part, and it is enforced two ways.  First, the
pipeline only aborts a transaction that its *shadow oracle* predicts
doomed both in the emitted order **and** in the original arrival order
(arrival-order doom is what makes the abort indistinguishable from the
post-commit abort the un-reordered system would have produced; a
transaction that some order could save is never aborted, it is merely
ordered or left on-chain as invalid).  Second, the ``reorder-soundness``
simulation invariant (:mod:`repro.simulation.invariants`) re-validates
every aborted transaction with the independent ``ReferenceValidator``
in arrival order and fails the run on any false abort, and checks every
emitted block is a permutation of its non-aborted input.

The shadow oracle mirrors the full validator pipeline — duplicate tx-id,
channel/chaincode, creator certificate + signature, response status,
endorsement-policy selection (including committed key-level
``VALIDATION_PARAMETER`` policies, tracked from the shadow's own
metadata view) and the MVCC/phantom version rules — because a
structurally invalid transaction must never advance the shadow state.
All predictions are pure functions of the envelope bytes and the shadow,
so the pipeline is deterministic: the cycle-break tie uses a seeded
hash of the tx id (never Python's randomized ``hash``), which keeps
serial and process-pool executions byte-identical.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.common.tracing import PERF
from repro.ledger.version import Version
from repro.protocol.transaction import TransactionEnvelope, ValidationCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.defense.features import FrameworkFeatures
    from repro.network.channel import ChannelConfig

#: Environment toggle: ``REPRO_REORDER=1`` enables the pipeline.
ENV_REORDER = "REPRO_REORDER"

#: The two flags a conflict-aware orderer may predict-and-abort on.
_CONFLICT_FLAGS = (
    ValidationCode.MVCC_READ_CONFLICT,
    ValidationCode.PHANTOM_READ_CONFLICT,
)

#: ``scope`` classification of a committed MVCC/phantom abort.
SCOPE_WITHIN_BLOCK = "within-block"
SCOPE_CROSS_BLOCK = "cross-block"


def resolve_reorder(enabled: Optional[bool] = None) -> bool:
    """Reorder toggle: explicit argument > ``REPRO_REORDER`` > off."""
    if enabled is None:
        raw = os.environ.get(ENV_REORDER, "").strip()
        enabled = raw not in ("", "0", "false", "no")
    return bool(enabled)


# ---------------------------------------------------------------------------
# Read/write profiles
# ---------------------------------------------------------------------------

class _TxProfile:
    """One envelope's conflict surface, extracted once per batch."""

    __slots__ = (
        "tx", "index", "reads", "writes", "hashed_reads", "hashed_writes",
        "ranges",
    )

    def __init__(self, tx: TransactionEnvelope, index: int) -> None:
        self.tx = tx
        self.index = index  # arrival position within the batch
        self.reads: list = []          # ((ns, key), Version | None)
        self.writes: set = set()       # (ns, key)
        self.hashed_reads: list = []   # ((ns, col, key_hash), Version | None)
        self.hashed_writes: set = set()  # (ns, col, key_hash)
        self.ranges: list = []         # (ns, start, end, ((key, version), ...))
        for ns in tx.payload.results.namespaces:
            for read in ns.reads:
                self.reads.append(((ns.namespace, read.key), read.version))
            for write in ns.writes:
                self.writes.add((ns.namespace, write.key))
            for query in ns.range_queries:
                self.ranges.append((
                    ns.namespace, query.start_key, query.end_key,
                    tuple((r.key, r.version) for r in query.reads),
                ))
            for col in ns.collections:
                for hashed in col.hashed_reads:
                    self.hashed_reads.append((
                        (ns.namespace, col.collection, hashed.key_hash),
                        hashed.version,
                    ))
                for hashed in col.hashed_writes:
                    self.hashed_writes.add(
                        (ns.namespace, col.collection, hashed.key_hash)
                    )

    def reads_key_of(self, other: "_TxProfile") -> bool:
        """Does this transaction read (or range-cover) a key ``other`` writes?"""
        for key, _version in self.reads:
            if key in other.writes:
                return True
        for key, _version in self.hashed_reads:
            if key in other.hashed_writes:
                return True
        for ns, start, end, _recorded in self.ranges:
            for write_ns, key in other.writes:
                if write_ns != ns:
                    continue
                if key >= start and (not end or key < end):
                    return True
        return False

    def writes_overlap(self, other: "_TxProfile") -> bool:
        return bool(
            self.writes & other.writes
            or self.hashed_writes & other.hashed_writes
        )


@dataclass(frozen=True)
class BatchRecord:
    """What the pipeline did to one cut batch (the invariant's audit trail).

    ``aborted`` holds ``(envelope, reason, conflict_block)`` triples;
    ``block_number`` is the number the emitted block received, or ``None``
    when every transaction of the batch was aborted (no block exists).
    """

    arrival: tuple
    emitted: tuple
    aborted: tuple
    block_number: Optional[int]


def _tiebreak(tx_id: str) -> str:
    """Seeded, process-independent tie-break token for cycle breaking."""
    return hashlib.sha256(f"reorder-fvs:{tx_id}".encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

class ReorderPipeline:
    """Conflict-aware batch transformer attached to one ordering service.

    Stateful: the *shadow* tracks the committed world exactly as the
    peers will see it — every predicted-VALID write of every emitted
    block advances ``(ns, key) -> (Version, writing block)`` maps (a
    deleted key keeps a tombstone so a later conflict can still be
    attributed to the deleting block), plus the committed key-level
    metadata the endorsement-policy rules consult and the set of
    committed tx ids for duplicate detection.  Because the orderer is a
    single total order over batches, the shadow at batch *N* equals the
    committed state at height *N* — which is what makes the early-abort
    prediction exact rather than heuristic.
    """

    def __init__(self, channel: "ChannelConfig", features: "FrameworkFeatures") -> None:
        self._channel = channel
        self._features = features
        self._evaluator = channel.evaluator()
        # (ns, key) -> (Version | None, block_num): None = deleted (tombstone).
        self._public: dict = {}
        # (ns, col, key_hash) -> (Version | None, block_num).
        self._private: dict = {}
        # (ns, key) -> {metadata name: bytes} — for key-level policies.
        self._meta: dict = {}
        self._seen_tx: set = set()
        #: Audit trail consumed by the ``reorder-soundness`` invariant.
        self.records: list[BatchRecord] = []
        # Lifetime totals (mirrored into the process-wide PERF counters).
        self.batches = 0
        self.displaced = 0
        self.max_distance = 0
        self.early_aborts = 0

    # -- the per-batch entry point -----------------------------------------
    def process_batch(
        self, batch: tuple, next_block_number: int
    ) -> tuple[tuple, list]:
        """Reorder one cut batch; returns ``(emitted, aborted)``.

        ``emitted`` is the (possibly empty) transaction sequence to seal
        into block ``next_block_number``; ``aborted`` lists
        ``(envelope, reason, conflict_block)`` for every transaction
        dropped as provably doomed — ``conflict_block`` names the block
        whose write kills it (the emitted block itself for an in-batch
        race), so callers can resolve the abort with post-commit timing.
        """
        started = time.perf_counter()
        try:
            return self._process(batch, next_block_number)
        finally:
            PERF.add_phase_time("reorder", time.perf_counter() - started)

    def _process(self, batch: tuple, next_block_number: int) -> tuple[tuple, list]:
        profiles = [_TxProfile(tx, i) for i, tx in enumerate(batch)]

        # Candidates are transactions that pass every structural check
        # (anything else commits with its structural flag, in arrival
        # order, and must not influence the conflict graph).  A tx id
        # duplicated inside the batch is structural too: which occurrence
        # survives is an ordering artifact, so neither is reordered.
        in_batch_counts: dict = {}
        for profile in profiles:
            in_batch_counts[profile.tx.tx_id] = (
                in_batch_counts.get(profile.tx.tx_id, 0) + 1
            )
        candidates = [
            p for p in profiles
            if in_batch_counts[p.tx.tx_id] == 1
            and self._structural_flag(p.tx) is None
        ]
        candidate_ids = {p.tx.tx_id for p in candidates}
        tail = [p for p in profiles if p.tx.tx_id not in candidate_ids]

        # Doom in *arrival* order: the flags the un-reordered block would
        # have carried.  Only arrival-doomed transactions are abortable —
        # aborting anything else would change an outcome some client
        # legitimately observed as VALID.
        arrival_flags = self._predict_sequence([p.tx for p in profiles])
        arrival_doomed = {
            profiles[i].tx.tx_id
            for i, flag in enumerate(arrival_flags)
            if flag in _CONFLICT_FLAGS
        }

        ordered = self._topological_order(candidates)
        trial = [p.tx for p in ordered] + [p.tx for p in tail]

        # Doom in the *emitted* order; doomed-in-both get aborted.  An
        # invalid transaction contributes no block writes, so removing
        # the aborted ones cannot change any survivor's flag.
        trial_flags = self._predict_sequence(trial)
        aborted: list = []
        emitted: list = []
        for tx, flag in zip(trial, trial_flags):
            if (
                flag in _CONFLICT_FLAGS
                and tx.tx_id in arrival_doomed
                and tx.tx_id in candidate_ids
            ):
                aborted.append((
                    tx,
                    flag.value.lower().replace("_", "-"),
                    self._conflict_block(tx, trial, trial_flags, next_block_number),
                ))
            else:
                emitted.append(tx)

        block_number = next_block_number if emitted else None
        # The definitive prediction runs on the final sequence so shadow
        # versions carry the true (block, position) heights, then applies.
        final_flags = self._predict_sequence(emitted)
        if block_number is not None:
            self._apply_sequence(emitted, final_flags, block_number)

        self._account(batch, emitted, aborted)
        self.records.append(BatchRecord(
            arrival=tuple(batch),
            emitted=tuple(emitted),
            aborted=tuple(aborted),
            block_number=block_number,
        ))
        return tuple(emitted), aborted

    # -- conflict graph + deterministic order ------------------------------
    def _topological_order(self, candidates: list) -> list:
        """Order candidates so readers precede writers of their keys.

        Edges: ``i -> j`` when *i* must commit before *j* — a reader
        before any writer of a key it read (rw), and the arrival-earlier
        writer before the arrival-later one for a shared written key (ww,
        which keeps last-writer-wins deterministic).  Cycles (mutual
        read-modify-writes) are broken by greedily removing the node with
        the most intra-cycle edges — ties going to the latest arrival,
        then to a seeded hash of the tx id — which keeps the arrival-first
        member of a symmetric RMW clique, exactly the transaction the
        un-reordered block would have validated.  Removed nodes re-enter
        the emitted sequence *after* every survivor, in arrival order.
        """
        nodes = list(candidates)
        edges: dict = {p.tx.tx_id: set() for p in nodes}
        for reader in nodes:
            for writer in nodes:
                if reader is writer:
                    continue
                if reader.reads_key_of(writer):
                    edges[reader.tx.tx_id].add(writer.tx.tx_id)
        for i, first in enumerate(nodes):
            for second in nodes[i + 1:]:
                if first.writes_overlap(second):
                    edges[first.tx.tx_id].add(second.tx.tx_id)

        by_id = {p.tx.tx_id: p for p in nodes}
        losers: list = []
        while True:
            cyclic = self._cyclic_nodes(edges)
            if not cyclic:
                break
            victim = max(
                cyclic,
                key=lambda tx_id: (
                    sum(1 for t in edges[tx_id] if t in cyclic)
                    + sum(1 for t in cyclic if tx_id in edges[t]),
                    by_id[tx_id].index,
                    _tiebreak(tx_id),
                ),
            )
            losers.append(by_id[victim])
            edges.pop(victim)
            for targets in edges.values():
                targets.discard(victim)

        survivors = {tx_id for tx_id in edges}
        indegree = {tx_id: 0 for tx_id in survivors}
        for source, targets in edges.items():
            for target in targets:
                indegree[target] += 1
        ready = sorted(
            (tx_id for tx_id, degree in indegree.items() if degree == 0),
            key=lambda tx_id: by_id[tx_id].index,
        )
        ordered: list = []
        while ready:
            # Smallest arrival index first: minimal displacement, and a
            # deterministic emit order for any edge set.
            tx_id = ready.pop(0)
            ordered.append(by_id[tx_id])
            for target in sorted(edges[tx_id], key=lambda t: by_id[t].index):
                indegree[target] -= 1
                if indegree[target] == 0:
                    position = 0
                    while (
                        position < len(ready)
                        and by_id[ready[position]].index < by_id[target].index
                    ):
                        position += 1
                    ready.insert(position, target)
        losers.sort(key=lambda p: p.index)
        return ordered + losers

    @staticmethod
    def _cyclic_nodes(edges: dict) -> set:
        """Every node on some directed cycle (iterative trim of the DAG part)."""
        indegree: dict = {tx_id: 0 for tx_id in edges}
        outdegree: dict = {tx_id: len(targets) for tx_id, targets in edges.items()}
        reverse: dict = {tx_id: set() for tx_id in edges}
        for source, targets in edges.items():
            for target in targets:
                indegree[target] += 1
                reverse[target].add(source)
        alive = set(edges)
        queue = [
            tx_id for tx_id in alive
            if indegree[tx_id] == 0 or outdegree[tx_id] == 0
        ]
        while queue:
            tx_id = queue.pop()
            if tx_id not in alive:
                continue
            alive.discard(tx_id)
            for target in edges[tx_id]:
                if target in alive:
                    indegree[target] -= 1
                    if indegree[target] == 0:
                        queue.append(target)
            for source in reverse[tx_id]:
                if source in alive:
                    outdegree[source] -= 1
                    if outdegree[source] == 0:
                        queue.append(source)
        return alive

    # -- the shadow oracle ---------------------------------------------------
    def _predict_sequence(self, transactions: list) -> list:
        """The flags the peers will assign to this sequence (no state change)."""
        flags: list = []
        block_writes: set = set()
        block_private: set = set()
        block_tx_ids: set = set()
        for tx in transactions:
            flag = self._structural_flag(tx, block_tx_ids)
            if flag is None:
                flag = self._conflict_flag(tx, block_writes, block_private)
            flags.append(flag)
            block_tx_ids.add(tx.tx_id)
            if flag is ValidationCode.VALID:
                for ns in tx.payload.results.namespaces:
                    for write in ns.writes:
                        block_writes.add((ns.namespace, write.key))
                    for col in ns.collections:
                        for hashed in col.hashed_writes:
                            block_private.add(
                                (ns.namespace, col.collection, hashed.key_hash)
                            )
        return flags

    def _structural_flag(
        self, tx: TransactionEnvelope, block_tx_ids: Optional[set] = None
    ) -> Optional[ValidationCode]:
        """The non-MVCC flag this transaction will carry, or None if clean.

        Mirrors the validator's check order exactly — a stale read behind
        a bad signature must be flagged for the signature, so such a
        transaction is never early-abort material.
        """
        if tx.tx_id in self._seen_tx or (block_tx_ids and tx.tx_id in block_tx_ids):
            return ValidationCode.DUPLICATE_TXID
        if tx.channel_id != self._channel.channel_id:
            return ValidationCode.INVALID_OTHER
        if not self._channel.chaincodes.get(tx.chaincode_id):
            return ValidationCode.INVALID_OTHER
        if not self._channel.msp_registry.validate_certificate(tx.creator):
            return ValidationCode.BAD_CREATOR_SIGNATURE
        if not tx.verify_creator_signature():
            return ValidationCode.BAD_CREATOR_SIGNATURE
        if not tx.payload.response.ok:
            return ValidationCode.BAD_RESPONSE_STATUS
        if not self._policies_ok(tx):
            return ValidationCode.ENDORSEMENT_POLICY_FAILURE
        return None

    def _conflict_flag(
        self, tx: TransactionEnvelope, block_writes: set, block_private: set
    ) -> ValidationCode:
        """MVCC + phantom verdict against shadow state and in-block writes."""
        for ns in tx.payload.results.namespaces:
            for read in ns.reads:
                if (ns.namespace, read.key) in block_writes:
                    return ValidationCode.MVCC_READ_CONFLICT
                if self._shadow_version(ns.namespace, read.key) != read.version:
                    return ValidationCode.MVCC_READ_CONFLICT
            for col in ns.collections:
                for hashed in col.hashed_reads:
                    full = (ns.namespace, col.collection, hashed.key_hash)
                    if full in block_private:
                        return ValidationCode.MVCC_READ_CONFLICT
                    entry = self._private.get(full)
                    committed = entry[0] if entry else None
                    if committed != hashed.version:
                        return ValidationCode.MVCC_READ_CONFLICT
        for ns in tx.payload.results.namespaces:
            for query in ns.range_queries:
                if not self._range_fresh(ns.namespace, query, block_writes):
                    return ValidationCode.PHANTOM_READ_CONFLICT
        return ValidationCode.VALID

    def _shadow_version(self, namespace: str, key: str) -> Optional[Version]:
        entry = self._public.get((namespace, key))
        return entry[0] if entry else None

    def _range_fresh(self, namespace: str, query, block_writes: set) -> bool:
        current = []
        for (ns, key), (version, _block) in sorted(self._public.items()):
            if ns != namespace or version is None:
                continue
            if key < query.start_key or (query.end_key and key >= query.end_key):
                continue
            current.append((key, version))
        if current != [(r.key, r.version) for r in query.reads]:
            return False
        for write_ns, key in block_writes:
            if write_ns != namespace:
                continue
            if key >= query.start_key and (
                not query.end_key or key < query.end_key
            ):
                return False
        return True

    def _policies_ok(self, tx: TransactionEnvelope) -> bool:
        """The endorsement-policy verdict, with key policies from the shadow."""
        definition = self._channel.chaincode(tx.chaincode_id)
        results = tx.payload.results
        payload_bytes = tx.payload.bytes()
        signers = []
        for endorsement in tx.endorsements:
            if not self._channel.msp_registry.validate_certificate(
                endorsement.endorser
            ):
                continue
            if endorsement.verify(payload_bytes):
                signers.append(endorsement.endorser)

        touched = results.collections_touched()
        if touched and self._features.filter_nonmember_endorsements:
            member_orgs: Optional[set] = None
            for namespace, name in touched:
                orgs = self._channel.collection(namespace, name).member_orgs()
                member_orgs = orgs if member_orgs is None else member_orgs & orgs
            signers = [c for c in signers if c.msp_id in (member_orgs or set())]

        need_chaincode = False
        extra: list = []
        if results.is_read_only:
            need_chaincode = True
            if self._features.collection_policy_on_reads:
                for namespace, name in sorted(touched):
                    config = self._channel.collection(namespace, name)
                    if config.endorsement_policy is not None:
                        extra.append(config.endorsement_policy)
        else:
            for ns in results.namespaces:
                for write in ns.writes:
                    key_policy = self._key_policy(ns.namespace, write.key)
                    if key_policy is not None:
                        extra.append(key_policy)
                    else:
                        need_chaincode = True
                for meta in ns.metadata_writes:
                    key_policy = self._key_policy(ns.namespace, meta.key)
                    if key_policy is not None:
                        extra.append(key_policy)
                    else:
                        need_chaincode = True
                for col in ns.collections:
                    if not col.hashed_writes:
                        continue
                    config = self._channel.collection(ns.namespace, col.collection)
                    if config.endorsement_policy is not None:
                        extra.append(config.endorsement_policy)
                    else:
                        need_chaincode = True

        if need_chaincode and not self._evaluator.evaluate(
            definition.endorsement_policy, signers
        ):
            return False
        return all(self._evaluator.evaluate(text, signers) for text in extra)

    def _key_policy(self, namespace: str, key: str) -> Optional[str]:
        value = self._meta.get((namespace, key), {}).get("VALIDATION_PARAMETER")
        return value.decode("utf-8") if value is not None else None

    # -- conflict attribution ----------------------------------------------
    def _conflict_block(
        self, tx: TransactionEnvelope, trial: list, trial_flags: list,
        next_block_number: int,
    ) -> Optional[int]:
        """Which block's write dooms ``tx`` (for abort-resolution timing).

        An in-batch race resolves with the block being cut; a stale read
        resolves with the *latest* shadow block that rewrote any of the
        transaction's keys.  ``None`` means no attributable block (the
        caller resolves the abort immediately).
        """
        block_writes: set = set()
        block_private: set = set()
        for other, flag in zip(trial, trial_flags):
            if other.tx_id == tx.tx_id:
                break
            if flag is not ValidationCode.VALID:
                continue
            for ns in other.payload.results.namespaces:
                for write in ns.writes:
                    block_writes.add((ns.namespace, write.key))
                for col in ns.collections:
                    for hashed in col.hashed_writes:
                        block_private.add(
                            (ns.namespace, col.collection, hashed.key_hash)
                        )
        latest: Optional[int] = None
        for ns in tx.payload.results.namespaces:
            for read in ns.reads:
                full = (ns.namespace, read.key)
                if full in block_writes:
                    return next_block_number
                entry = self._public.get(full)
                committed = entry[0] if entry else None
                if committed != read.version and entry is not None:
                    latest = entry[1] if latest is None else max(latest, entry[1])
            for col in ns.collections:
                for hashed in col.hashed_reads:
                    full = (ns.namespace, col.collection, hashed.key_hash)
                    if full in block_private:
                        return next_block_number
                    entry = self._private.get(full)
                    committed = entry[0] if entry else None
                    if committed != hashed.version and entry is not None:
                        latest = entry[1] if latest is None else max(latest, entry[1])
            for query in ns.range_queries:
                if not self._range_fresh(ns.namespace, query, block_writes):
                    in_block = any(
                        write_ns == ns.namespace
                        and key >= query.start_key
                        and (not query.end_key or key < query.end_key)
                        for write_ns, key in block_writes
                    )
                    if in_block:
                        return next_block_number
                    for (shadow_ns, key), (_version, block) in self._public.items():
                        if shadow_ns != ns.namespace:
                            continue
                        if key < query.start_key or (
                            query.end_key and key >= query.end_key
                        ):
                            continue
                        latest = block if latest is None else max(latest, block)
        return latest

    # -- shadow maintenance --------------------------------------------------
    def _apply_sequence(
        self, transactions: list, flags: list, block_number: int
    ) -> None:
        """Advance the shadow exactly as the peers' committers will."""
        for tx_num, (tx, flag) in enumerate(zip(transactions, flags)):
            self._seen_tx.add(tx.tx_id)
            if flag is not ValidationCode.VALID:
                continue
            version = Version(block_number, tx_num)
            for ns in tx.payload.results.namespaces:
                for write in ns.writes:
                    full = (ns.namespace, write.key)
                    if write.is_delete:
                        self._public[full] = (None, block_number)
                        self._meta.pop(full, None)
                    else:
                        self._public[full] = (version, block_number)
                for meta in ns.metadata_writes:
                    self._meta.setdefault(
                        (ns.namespace, meta.key), {}
                    )[meta.name] = meta.value
                for col in ns.collections:
                    for hashed in col.hashed_writes:
                        full = (ns.namespace, col.collection, hashed.key_hash)
                        if hashed.is_delete:
                            self._private[full] = (None, block_number)
                        else:
                            self._private[full] = (version, block_number)

    # -- accounting ----------------------------------------------------------
    def _account(self, batch: tuple, emitted: list, aborted: list) -> None:
        self.batches += 1
        PERF.reorder_batches += 1
        # Displacement is measured among emitted transactions only — an
        # abort is not a reordering of what remains.
        arrival_positions = {
            tx.tx_id: position
            for position, tx in enumerate(
                tx for tx in batch if tx.tx_id in {e.tx_id for e in emitted}
            )
        }
        for position, tx in enumerate(emitted):
            distance = abs(position - arrival_positions[tx.tx_id])
            if distance:
                self.displaced += 1
                PERF.reorder_displaced += 1
            if distance > self.max_distance:
                self.max_distance = distance
            if distance > PERF.reorder_max_distance:
                PERF.reorder_max_distance = distance
        self.early_aborts += len(aborted)
        PERF.early_aborts += len(aborted)


# ---------------------------------------------------------------------------
# Conflict-scope classification (shared with tracing / stats)
# ---------------------------------------------------------------------------

def conflict_scopes(transactions, flags) -> dict:
    """Classify each MVCC/phantom abort of a validated block by scope.

    ``within-block`` — the transaction's reads (or range windows) overlap
    a key an earlier *valid* transaction of the same block wrote; this is
    the population intra-block reordering can rescue.  ``cross-block`` —
    the conflict predates the block (a stale read against committed
    state), which only early abort can address.  Returns
    ``{tx_id: scope}`` for the conflicted transactions only.
    """
    scopes: dict = {}
    block_writes: set = set()
    block_private: set = set()
    for tx, flag in zip(transactions, flags):
        if flag in _CONFLICT_FLAGS:
            profile = _TxProfile(tx, 0)
            within = any(key in block_writes for key, _v in profile.reads) or any(
                key in block_private for key, _v in profile.hashed_reads
            )
            if not within:
                for ns, start, end, _recorded in profile.ranges:
                    for write_ns, key in block_writes:
                        if write_ns != ns:
                            continue
                        if key >= start and (not end or key < end):
                            within = True
                            break
                    if within:
                        break
            scopes[tx.tx_id] = SCOPE_WITHIN_BLOCK if within else SCOPE_CROSS_BLOCK
        elif flag is ValidationCode.VALID:
            for ns in tx.payload.results.namespaces:
                for write in ns.writes:
                    block_writes.add((ns.namespace, write.key))
                for col in ns.collections:
                    for hashed in col.hashed_writes:
                        block_private.add(
                            (ns.namespace, col.collection, hashed.key_hash)
                        )
    return scopes
