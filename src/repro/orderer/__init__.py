"""Ordering service: Raft consensus, block cutting, block delivery."""

from repro.orderer.block_cutter import BlockCutter
from repro.orderer.raft import RaftCluster, RaftNode, RaftState
from repro.orderer.service import OrderingService

__all__ = ["BlockCutter", "RaftCluster", "RaftNode", "RaftState", "OrderingService"]
