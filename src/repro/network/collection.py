"""Private data collection configuration.

Mirrors the explicit PDC definition a Fabric project ships as a ``.json``
collection config — the very file the paper's static analyzer fingerprints
("Name", "Policy", "RequiredPeerCount", "MaxPeerCount", "BlockToLive",
"MemberOnlyRead", and the optional "EndorsementPolicy").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from repro.common.errors import ConfigError
from repro.policy.ast import PolicyNode
from repro.policy.parser import parse_policy


@lru_cache(maxsize=1024)
def _parsed_policy(text: str) -> PolicyNode:
    return parse_policy(text)


@lru_cache(maxsize=1024)
def _member_orgs(policy_text: str) -> frozenset:
    return frozenset(_parsed_policy(policy_text).msp_ids())


@dataclass(frozen=True)
class CollectionConfig:
    """One collection's properties.

    ``policy`` defines *membership*: its organizations hold the original
    private data.  ``endorsement_policy`` is the optional collection-level
    endorsement policy; when absent, write transactions fall back to the
    chaincode-level policy — the default in 86.51% of the GitHub projects
    the paper studied, and the precondition of its injection attacks.
    """

    name: str
    policy: str  # membership policy text, e.g. "OR('Org1MSP.member', 'Org2MSP.member')"
    required_peer_count: int = 1
    max_peer_count: int = 2
    block_to_live: int = 0  # 0 = never purge
    # proto3 defaults: absent in the JSON config means False.  Use Case 1
    # (non-members endorsing PDC transactions) presupposes these are off,
    # which is also what the paper's vulnerable GitHub projects ship.
    member_only_read: bool = False
    member_only_write: bool = False
    endorsement_policy: Optional[str] = None  # collection-level policy text

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("collection name must be non-empty")
        if self.required_peer_count < 0:
            raise ConfigError("RequiredPeerCount must be >= 0")
        if self.max_peer_count < self.required_peer_count:
            raise ConfigError("MaxPeerCount must be >= RequiredPeerCount")
        if self.block_to_live < 0:
            raise ConfigError("BlockToLive must be >= 0")
        parse_policy(self.policy)  # fail fast on malformed membership policy
        if self.endorsement_policy is not None:
            parse_policy(self.endorsement_policy)

    def membership_policy(self) -> PolicyNode:
        return _parsed_policy(self.policy)

    def member_orgs(self) -> set[str]:
        """MSP ids of the organizations that hold the original data."""
        return set(_member_orgs(self.policy))

    def is_member_org(self, msp_id: str) -> bool:
        return msp_id in self.member_orgs()

    def endorsement_policy_node(self) -> Optional[PolicyNode]:
        if self.endorsement_policy is None:
            return None
        return parse_policy(self.endorsement_policy)

    def to_json_dict(self) -> dict:
        """Render as the on-disk collection-config JSON format."""
        doc = {
            "name": self.name,
            "policy": self.policy,
            "requiredPeerCount": self.required_peer_count,
            "maxPeerCount": self.max_peer_count,
            "blockToLive": self.block_to_live,
            "memberOnlyRead": self.member_only_read,
            "memberOnlyWrite": self.member_only_write,
        }
        if self.endorsement_policy is not None:
            doc["endorsementPolicy"] = {"signaturePolicy": self.endorsement_policy}
        return doc


@dataclass(frozen=True)
class ChaincodeDefinition:
    """A deployed chaincode's agreed configuration on a channel."""

    name: str
    endorsement_policy: str  # implicitMeta ("MAJORITY Endorsement") or signature policy text
    collections: tuple[CollectionConfig, ...] = field(default=())

    def collection(self, name: str) -> CollectionConfig:
        for collection in self.collections:
            if collection.name == name:
                return collection
        raise ConfigError(f"chaincode {self.name!r} has no collection {name!r}")

    def has_collection(self, name: str) -> bool:
        return any(c.name == name for c in self.collections)

    def block_to_live_map(self) -> dict[tuple[str, str], int]:
        return {(self.name, c.name): c.block_to_live for c in self.collections}
