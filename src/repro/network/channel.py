"""Channel configuration: organizations, policies, deployed chaincodes.

A channel groups organizations with a common business goal; its members
share one ledger.  The channel object here is the *configuration* every
node agrees on (like the channel config blocks in Fabric): MSP trust
roots, per-org "Endorsement" sub-policies, the default (chaincode-level)
endorsement policy inherited from ``configtx.yaml``, and the chaincode
definitions with their collections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.common.errors import ConfigError
from repro.identity.msp import MSPRegistry
from repro.identity.organization import Organization
from repro.identity.roles import Role
from repro.network.collection import ChaincodeDefinition, CollectionConfig
from repro.policy.ast import PolicyNode, Principal, or_
from repro.policy.evaluator import PolicyEvaluator

DEFAULT_ENDORSEMENT_POLICY = "MAJORITY Endorsement"


@dataclass
class ChannelConfig:
    """The agreed configuration of one channel."""

    channel_id: str
    organizations: list[Organization]
    default_endorsement_policy: str = DEFAULT_ENDORSEMENT_POLICY
    org_sub_policies: dict[str, PolicyNode] = field(default_factory=dict)
    chaincodes: dict[str, ChaincodeDefinition] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.organizations:
            raise ConfigError("a channel needs at least one organization")
        seen = set()
        for org in self.organizations:
            if org.msp_id in seen:
                raise ConfigError(f"duplicate organization {org.msp_id!r}")
            seen.add(org.msp_id)
        # Default per-org "Endorsement" sub-policy: any peer of the org,
        # the same default the Fabric test network configures.
        for org in self.organizations:
            self.org_sub_policies.setdefault(
                org.msp_id, or_(Principal(msp_id=org.msp_id, role=Role.PEER))
            )
        self._msp_registry = MSPRegistry()
        for org in self.organizations:
            self._msp_registry.register(org.ca)

    @property
    def msp_registry(self) -> MSPRegistry:
        return self._msp_registry

    def msp_ids(self) -> list[str]:
        return [org.msp_id for org in self.organizations]

    def organization(self, msp_id: str) -> Organization:
        for org in self.organizations:
            if org.msp_id == msp_id:
                return org
        raise ConfigError(f"no organization {msp_id!r} on channel {self.channel_id!r}")

    def evaluator(self) -> PolicyEvaluator:
        return PolicyEvaluator(self._msp_registry, self.org_sub_policies)

    # -- chaincode lifecycle ---------------------------------------------
    def deploy_chaincode(
        self,
        name: str,
        endorsement_policy: Optional[str] = None,
        collections: Iterable[CollectionConfig] = (),
    ) -> ChaincodeDefinition:
        """Agree on a chaincode definition (the lifecycle 'commit' step)."""
        if name in self.chaincodes:
            raise ConfigError(f"chaincode {name!r} already deployed on {self.channel_id!r}")
        definition = ChaincodeDefinition(
            name=name,
            endorsement_policy=endorsement_policy or self.default_endorsement_policy,
            collections=tuple(collections),
        )
        member_msps = set(self.msp_ids())
        for collection in definition.collections:
            unknown = collection.member_orgs() - member_msps
            if unknown:
                raise ConfigError(
                    f"collection {collection.name!r} names organizations outside the "
                    f"channel: {sorted(unknown)}"
                )
        self.chaincodes[name] = definition
        return definition

    def chaincode(self, name: str) -> ChaincodeDefinition:
        try:
            return self.chaincodes[name]
        except KeyError:
            raise ConfigError(f"chaincode {name!r} not deployed on {self.channel_id!r}") from None

    def collection(self, chaincode_id: str, collection_name: str) -> CollectionConfig:
        return self.chaincode(chaincode_id).collection(collection_name)

    def block_to_live_map(self) -> dict[tuple[str, str], int]:
        btl: dict[tuple[str, str], int] = {}
        for definition in self.chaincodes.values():
            btl.update(definition.block_to_live_map())
        return btl
