"""The prototype networks of Section V.

Three presets reproduce the paper's experimental setups:

* :func:`three_org_network` — orgs 1-3, one peer + one client each, PDC1
  shared by org1 and org2, chaincode-level ``MAJORITY Endorsement``
  (the default and, per the GitHub study, by far the most common policy).
* :func:`five_org_network` — adds org4 and org5 with the chaincode-level
  ``2OutOf(org1..org5)`` policy of §V-A5.
* any preset accepts ``collection_policy`` to add the §V-A6
  collection-level ``AND(org1, org2)`` policy, and ``features`` to run on
  the defended (modified) framework.

All presets deploy the chaincode *definition*; experiments install the
actual contracts (honest, constrained, or malicious) per peer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.client.gateway import Gateway
from repro.core.defense.features import FrameworkFeatures
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork
from repro.peer.node import PeerNode

CHAINCODE = "pdccc"
COLLECTION = "PDC1"
CHANNEL = "mychannel"
PRIVATE_KEY_NAME = "k1"


@dataclass
class TestNetwork:
    """A preset network plus handles to its peers and clients."""

    network: FabricNetwork
    peers: dict[str, PeerNode]  # "peer0.Org1MSP" -> node
    clients: dict[str, Gateway]  # "Org1MSP" -> gateway
    chaincode_id: str = CHAINCODE
    collection: str = COLLECTION

    def peer_of(self, org_num: int) -> PeerNode:
        return self.peers[f"peer0.Org{org_num}MSP"]

    def client_of(self, org_num: int) -> Gateway:
        return self.clients[f"Org{org_num}MSP"]


def _build(
    org_count: int,
    member_org_nums: tuple[int, ...],
    chaincode_policy: str,
    collection_policy: Optional[str],
    features: FrameworkFeatures,
    required_peer_count: int = 1,
    max_peer_count: int = 3,
    batch_size: int = 1,
) -> TestNetwork:
    organizations = [Organization(f"Org{i}MSP") for i in range(1, org_count + 1)]
    channel = ChannelConfig(channel_id=CHANNEL, organizations=organizations)
    members = ", ".join(f"'Org{i}MSP.member'" for i in member_org_nums)
    channel.deploy_chaincode(
        CHAINCODE,
        endorsement_policy=chaincode_policy,
        collections=[
            CollectionConfig(
                name=COLLECTION,
                policy=f"OR({members})",
                required_peer_count=required_peer_count,
                max_peer_count=max_peer_count,
                endorsement_policy=collection_policy,
            )
        ],
    )
    network = FabricNetwork(channel=channel, features=features, batch_size=batch_size)
    peers = {}
    clients = {}
    for org in organizations:
        peer = network.add_peer(org.msp_id, "peer0")
        peers[peer.name] = peer
        clients[org.msp_id] = network.client(org.msp_id, "client0")
    return TestNetwork(network=network, peers=peers, clients=clients)


def three_org_network(
    collection_policy: Optional[str] = None,
    features: FrameworkFeatures | None = None,
    batch_size: int = 1,
) -> TestNetwork:
    """The §V-A prototype: 3 orgs, PDC1 = {org1, org2}, MAJORITY policy.

    ``batch_size`` feeds the orderer's block cutter; it only matters once
    an event runtime pipelines submissions (the synchronous path flushes
    per transaction regardless).
    """
    return _build(
        org_count=3,
        member_org_nums=(1, 2),
        chaincode_policy="MAJORITY Endorsement",
        collection_policy=collection_policy,
        features=features or FrameworkFeatures.original(),
        batch_size=batch_size,
    )


def five_org_network(
    collection_policy: Optional[str] = None,
    features: FrameworkFeatures | None = None,
) -> TestNetwork:
    """The §V-A5 prototype: 5 orgs, PDC1 = {org1, org2}, 2OutOf policy."""
    policy = (
        "OutOf(2, 'Org1MSP.peer', 'Org2MSP.peer', 'Org3MSP.peer', "
        "'Org4MSP.peer', 'Org5MSP.peer')"
    )
    return _build(
        org_count=5,
        member_org_nums=(1, 2),
        chaincode_policy=policy,
        collection_policy=collection_policy,
        features=features or FrameworkFeatures.original(),
    )
