"""The assembled Fabric network: channel + peers + gossip + ordering.

:class:`FabricNetwork` is the top-level object applications (and the
attack/defense experiments) interact with.  It owns the wiring of Fig. 1:
organizations contribute peers and clients, peers register with the gossip
layer and with block delivery, and the ordering service turns submitted
envelopes into blocks every peer validates independently.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.chaincode.api import Chaincode
from repro.client.gateway import Gateway, SubmitResult
from repro.common.errors import ConfigError, EndorsementError
from repro.common.tracing import PERF, Tracer
from repro.core.defense.features import FrameworkFeatures
from repro.gossip.dissemination import (
    GossipNetwork,
    resolve_anti_entropy_every,
    resolve_gossip_batch,
)
from repro.gossip.reconciler import Reconciler
from repro.ledger.snapshot import (
    bootstrap_from_package,
    resolve_prune,
    resolve_snapshot_every,
)
from repro.network.channel import ChannelConfig
from repro.orderer.reorder import ReorderPipeline, conflict_scopes, resolve_reorder
from repro.orderer.service import OrderingService
from repro.peer.endorser import EndorsementOutput
from repro.peer.node import PeerNode
from repro.protocol.proposal import Proposal
from repro.protocol.transaction import TransactionEnvelope, ValidationCode
from repro.storage import open_backend, resolve_backend_kind

if TYPE_CHECKING:  # pragma: no cover
    from repro.ledger.block import Block
    from repro.runtime.faults import FaultInjector, LatencyModel
    from repro.runtime.runtime import PendingTransaction, TransactionRuntime


class FabricNetwork:
    """One channel's worth of running infrastructure."""

    def __init__(
        self,
        channel: ChannelConfig,
        features: FrameworkFeatures | None = None,
        orderer_cluster_size: int = 3,
        batch_size: int = 1,
        disseminate_on_endorsement: bool = True,
        tracer: "Tracer | None" = None,
        state_backend: str | None = None,
        state_dir: str | None = None,
        snapshot_every: int | None = None,
        prune: bool | None = None,
        reorder: bool | None = None,
        gossip_batch: bool | None = None,
        anti_entropy_every: float | None = None,
    ) -> None:
        self.channel = channel
        self.features = features or FrameworkFeatures.original()
        # Storage engine for every peer ledger in this network (resolved
        # from REPRO_STATE_BACKEND when not given).  ``state_dir`` roots
        # the per-peer WAL directories; by default each peer gets a fresh
        # scratch directory.
        self.state_backend = resolve_backend_kind(state_backend)
        self._state_dir = state_dir
        # Snapshot checkpointing interval and pruning toggle for every
        # peer (resolved from REPRO_SNAPSHOT_EVERY / REPRO_PRUNE when not
        # given; 0 / False keep the un-snapshotted reference behaviour).
        self.snapshot_every = resolve_snapshot_every(snapshot_every)
        self.prune_enabled = resolve_prune(prune)
        # Gossip fast path (resolved from REPRO_GOSSIP_BATCH /
        # REPRO_ANTI_ENTROPY_EVERY when not given): coalesced per-target
        # dissemination payloads, and the cadence of the digest-driven
        # anti-entropy loop the runtime schedules (0 = off).
        self.gossip_batch_enabled = resolve_gossip_batch(gossip_batch)
        self.anti_entropy_every = resolve_anti_entropy_every(anti_entropy_every)
        self.gossip = GossipNetwork(channel, batch=self.gossip_batch_enabled)
        self.reconciler = Reconciler(self.gossip)
        # Conflict-aware ordering (resolved from REPRO_REORDER when not
        # given): the orderer reorders each cut batch along its conflict
        # graph and early-aborts provably doomed transactions.
        self.reorder_enabled = resolve_reorder(reorder)
        self.orderer = OrderingService(
            cluster_size=orderer_cluster_size,
            batch_size=batch_size,
            reorderer=(
                ReorderPipeline(channel, self.features)
                if self.reorder_enabled
                else None
            ),
        )
        self._peers: dict[str, PeerNode] = {}
        self._peer_delivery: dict[str, Callable[["Block"], object]] = {}
        self._disseminate = disseminate_on_endorsement
        self.tracer = tracer
        if self.reorder_enabled and tracer is not None:
            self.orderer.on_early_abort(
                lambda envelope, reason, conflict_block: tracer.record(
                    "orderer", "early-abort", envelope.tx_id,
                    reason=reason, conflict_block=conflict_block,
                )
            )
        self.runtime: "TransactionRuntime | None" = None

    # -- topology ------------------------------------------------------------
    def _build_peer(
        self, msp_id: str, name: str, features: FrameworkFeatures | None
    ) -> tuple[PeerNode, Callable[["Block"], object]]:
        """Enroll, construct and gossip-register a peer (no delivery yet)."""
        org = self.channel.organization(msp_id)
        identity = org.enroll_peer(name)
        backend = open_backend(
            self.state_backend, directory=self._state_dir, name=identity.enrollment_id
        )
        peer = PeerNode(
            identity=identity,
            channel=self.channel,
            features=features or self.features,
            backend=backend,
            snapshot_every=self.snapshot_every,
            prune=self.prune_enabled,
        )
        if peer.name in self._peers:
            raise ConfigError(f"peer {peer.name!r} already exists")
        self._peers[peer.name] = peer
        self.gossip.register_peer(peer)
        peer.on_snapshot_sig(
            lambda source, manifest, cert, sig: self.gossip.broadcast_snapshot_sig(
                source, manifest, cert, sig
            )
        )
        handler = self._build_delivery_handler(peer)
        self._peer_delivery[peer.name] = handler
        return peer, handler

    def add_peer(
        self,
        msp_id: str,
        name: str = "peer0",
        features: FrameworkFeatures | None = None,
    ) -> PeerNode:
        """Create a peer for ``msp_id`` and wire it into gossip + delivery."""
        peer, handler = self._build_peer(msp_id, name, features)
        if self.runtime is not None:
            self.runtime.register_peer(peer, handler)
        else:
            self.orderer.register_delivery(handler)
        return peer

    def join_peer(
        self,
        msp_id: str,
        name: str = "peer0",
        features: FrameworkFeatures | None = None,
    ) -> PeerNode:
        """Add a peer that bootstraps from a snapshot + tail replay.

        When a gossip peer offers a sealed snapshot reaching at least the
        orderer's pruned-backlog offset, the new peer loads the verified
        package and replays only the tail; otherwise it falls back to the
        full replay :meth:`add_peer` performs (raising
        :class:`~repro.common.errors.PrunedBacklogError` if the backlog no
        longer reaches back to genesis).
        """
        peer, handler = self._build_peer(msp_id, name, features)
        if self.runtime is not None:
            self.runtime.join_peer(peer, handler)
            return peer
        if self.snapshot_every:
            package = self.gossip.fetch_snapshot(
                peer, min_height=self.orderer.backlog_offset
            )
            if package is not None and package.manifest.height > peer.ledger.height:
                bootstrap_from_package(peer.ledger, package, self.channel)
        for block in self.orderer.blocks_since(peer.ledger.height):
            handler(block)
        self.orderer.register_delivery(handler, replay=False)
        return peer

    def _build_delivery_handler(self, peer: PeerNode) -> Callable[["Block"], object]:
        """The (optionally traced) block-delivery callable for one peer."""
        if self.tracer is None:
            return peer.deliver_block

        def traced_delivery(block, _peer=peer):
            self.tracer.record(
                "orderer", "deliver-block", block=block.header.number, to=_peer.name
            )
            validated = _peer.deliver_block(block)
            scopes = conflict_scopes(block.transactions, validated.flags)
            for tx, flag in zip(block.transactions, validated.flags):
                detail = {"flag": flag.value}
                if tx.tx_id in scopes:
                    detail["scope"] = scopes[tx.tx_id]
                self.tracer.record(_peer.name, "validate+commit", tx.tx_id, **detail)
            return validated

        return traced_delivery

    def delivery_handler_for(self, peer: PeerNode) -> Callable[["Block"], object]:
        try:
            return self._peer_delivery[peer.name]
        except KeyError:
            raise ConfigError(f"peer {peer.name!r} is not part of this network") from None

    # -- the event-driven runtime ---------------------------------------------
    def attach_runtime(
        self,
        seed: int = 0,
        latency: "LatencyModel | None" = None,
        faults: "FaultInjector | None" = None,
        batch_timeout: float | None = None,
        mempool_limit: int | None = None,
        validate_cost=None,
    ) -> "TransactionRuntime":
        """Switch this network onto the event-driven transaction runtime.

        Afterwards gossip pushes and block deliveries travel as scheduled
        messages, ``submit_async`` pipelines transactions, and the
        synchronous ``submit_transaction`` becomes a thin wrapper that
        runs the event loop until its own commit.  Attach the runtime
        *after* adding peers but before submitting traffic.

        ``mempool_limit`` bounds transactions in flight (default: the
        ``REPRO_MEMPOOL_LIMIT`` env var, else unbounded); ``validate_cost``
        attaches a :class:`~repro.runtime.executor.ValidationCostModel`
        charging each block's validation its simulated service time.
        """
        if self.runtime is not None:
            raise ConfigError("a runtime is already attached to this network")
        from repro.runtime.runtime import DEFAULT_BATCH_TIMEOUT, TransactionRuntime

        runtime = TransactionRuntime(
            self,
            seed=seed,
            latency=latency,
            faults=faults,
            batch_timeout=(
                DEFAULT_BATCH_TIMEOUT if batch_timeout is None else batch_timeout
            ),
            mempool_limit=mempool_limit,
            validate_cost=validate_cost,
        )
        self.runtime = runtime
        return runtime

    def peer(self, name: str) -> PeerNode:
        try:
            return self._peers[name]
        except KeyError:
            raise ConfigError(f"no peer named {name!r}") from None

    def peers(self) -> list[PeerNode]:
        return list(self._peers.values())

    def peers_of(self, msp_id: str) -> list[PeerNode]:
        return [p for p in self._peers.values() if p.msp_id == msp_id]

    def default_peer_for(self, msp_id: str) -> PeerNode:
        peers = self.peers_of(msp_id)
        if not peers:
            raise ConfigError(f"organization {msp_id!r} has no peers")
        return peers[0]

    def default_endorsers(self) -> list[PeerNode]:
        """One peer per organization — enough for any MAJORITY/ALL policy."""
        seen: dict[str, PeerNode] = {}
        for peer in self._peers.values():
            seen.setdefault(peer.msp_id, peer)
        return list(seen.values())

    def client(self, msp_id: str, name: str = "client0") -> Gateway:
        identity = self.channel.organization(msp_id).enroll_client(name)
        return Gateway(identity=identity, network=self)

    # -- chaincode ------------------------------------------------------------
    def install_chaincode(
        self,
        name: str,
        contract_factory: Callable[[PeerNode], Chaincode] | Chaincode,
        peers: Optional[Sequence[PeerNode]] = None,
    ) -> None:
        """Install a contract on the given peers (default: all).

        Pass a factory ``peer -> Chaincode`` to install per-peer customized
        implementations (org-specific constraints — or malicious forks).
        """
        targets = list(peers) if peers is not None else self.peers()
        for peer in targets:
            if callable(contract_factory) and not isinstance(contract_factory, Chaincode):
                contract = contract_factory(peer)
            else:
                contract = contract_factory  # shared instance: contracts are stateless
            peer.install_chaincode(name, contract)

    # -- the execution phase (endorsement + dissemination) ----------------------
    def request_endorsement(
        self, peer: PeerNode, proposal: Proposal, reusable: bool = False
    ) -> EndorsementOutput:
        """Endorse at ``peer``; on success, stage + gossip the private writes."""
        if self.tracer:
            self.tracer.record(
                "client", "send-proposal", proposal.tx_id,
                to=peer.name, function=proposal.function,
            )
        return self.process_endorsement(peer, proposal, reusable=reusable)

    def process_endorsement(
        self, peer: PeerNode, proposal: Proposal, reusable: bool = False
    ) -> EndorsementOutput:
        """The peer-side half of endorsement: simulate, sign, stage, gossip.

        Split from :meth:`request_endorsement` so the runtime fan-out path
        (where the "send-proposal" happens at the gateway, message delivery
        later) can run exactly the peer-side work on arrival.  Wall time is
        accumulated into the ``endorse`` perf phase.
        """
        started = time.perf_counter()
        try:
            output = peer.endorse(proposal, reusable=reusable)
        finally:
            PERF.add_phase_time("endorse", time.perf_counter() - started)
        if self.tracer:
            self.tracer.record(peer.name, "simulate+endorse", proposal.tx_id)
        if output.private_writes:
            peer.stage_private_writes(proposal.tx_id, output.private_writes)
            if self._disseminate:
                pushed = self.gossip.disseminate(peer, proposal.tx_id, output.private_writes)
                if self.tracer:
                    self.tracer.record(
                        peer.name, "gossip-private-rwset", proposal.tx_id, pushes=pushed
                    )
        return output

    # -- the ordering + validation phases ------------------------------------------
    def submit_envelope(
        self, envelope: TransactionEnvelope, client_payload: bytes = b""
    ) -> SubmitResult:
        """Order the envelope, wait for commit, and report the outcome.

        The returned status is the flag computed by the peers — honest
        peers always agree because validation is deterministic over the
        same block and (converged) state.

        With a runtime attached this is the synchronous compatibility
        wrapper: the envelope is enqueued like any async submission and
        the event loop runs until its commit resolves (so it pays the
        batch timeout instead of force-flushing a one-transaction block).
        """
        if self.tracer:
            self.tracer.record(
                "client", "assemble+submit", envelope.tx_id,
                endorsements=len(envelope.endorsements),
            )
        if self.runtime is not None:
            pending = self.runtime.submit(envelope, client_payload)
            return self.runtime.run_until_committed(pending)
        self.orderer.submit(envelope)
        self.orderer.flush()
        if self.orderer.early_abort_info(envelope.tx_id) is not None:
            # Early-aborted envelopes never reach a block, so no peer has
            # a status for them — the orderer's verdict is the outcome.
            return SubmitResult(
                tx_id=envelope.tx_id,
                status=ValidationCode.ORDERER_EARLY_ABORT,
                payload=client_payload,
                envelope=envelope,
            )
        status = self.status_of(envelope.tx_id)
        return SubmitResult(
            tx_id=envelope.tx_id,
            status=status,
            payload=client_payload,
            envelope=envelope,
        )

    def submit_envelope_async(
        self, envelope: TransactionEnvelope, client_payload: bytes = b""
    ) -> "PendingTransaction":
        """Enqueue an assembled envelope on the runtime; returns a future.

        The pipelined counterpart of :meth:`submit_envelope` — requires an
        attached runtime and does *not* advance the event loop, so many
        transactions can be put in flight before any block is cut.
        """
        if self.runtime is None:
            raise ConfigError(
                "submit_envelope_async needs an event runtime — "
                "call network.attach_runtime() first"
            )
        if self.tracer:
            self.tracer.record(
                "client", "assemble+submit", envelope.tx_id,
                endorsements=len(envelope.endorsements),
            )
        return self.runtime.submit(envelope, client_payload)

    def status_of(self, tx_id: str) -> ValidationCode:
        """The validation flag peers agree on for a committed transaction."""
        statuses = set()
        for peer in self._peers.values():
            status = peer.transaction_status(tx_id)
            if status is not None:
                statuses.add(status)
        if not statuses:
            raise EndorsementError(f"transaction {tx_id} was never committed to any peer")
        if len(statuses) > 1:  # pragma: no cover - would indicate a simulator bug
            raise EndorsementError(f"peers disagree on tx {tx_id}: {statuses}")
        return statuses.pop()

    # Backwards-compatible alias (pre-runtime name).
    _status_of = status_of

    # -- maintenance --------------------------------------------------------------
    def reconcile_private_data(self) -> int:
        """Run one reconciliation sweep; returns the number of repairs."""
        return self.reconciler.reconcile_all()
