"""Export a channel configuration as a ``configtx.yaml`` document.

Closes the loop between the simulator and the static analyzer: a channel
built programmatically can be written out in the same format the
analyzer's configtx detector parses, so a simulated deployment can be
audited exactly like a GitHub project.
"""

from __future__ import annotations

import json

from repro.network.channel import ChannelConfig
from repro.policy.implicit_meta import is_implicit_meta


def export_configtx(channel: ChannelConfig) -> str:
    """Render the channel's organizations and default policies as YAML."""
    lines = ["---", "Organizations:"]
    for org in channel.organizations:
        sub_policy = channel.org_sub_policies[org.msp_id]
        lines += [
            f"  - &{org.msp_id}",
            f"    Name: {org.msp_id}",
            f"    ID: {org.msp_id}",
            f"    MSPDir: crypto-config/peerOrganizations/{org.msp_id.lower()}/msp",
            "    Policies:",
            "      Readers:",
            "        Type: Signature",
            f"        Rule: \"OR('{org.msp_id}.member')\"",
            "      Endorsement:",
            "        Type: Signature",
            f"        Rule: \"{sub_policy}\"",
        ]

    default = channel.default_endorsement_policy
    if is_implicit_meta(default):
        endorsement_block = [
            "    Endorsement:",
            "      Type: ImplicitMeta",
            f"      Rule: \"{default}\"",
        ]
    else:
        endorsement_block = [
            "    Endorsement:",
            "      Type: Signature",
            f"      Rule: \"{default}\"",
        ]

    lines += [
        "",
        "Application: &ApplicationDefaults",
        "  Organizations:",
        "  Policies:",
        "    Readers:",
        "      Type: ImplicitMeta",
        "      Rule: \"ANY Readers\"",
        "    Writers:",
        "      Type: ImplicitMeta",
        "      Rule: \"ANY Writers\"",
        "    LifecycleEndorsement:",
        "      Type: ImplicitMeta",
        "      Rule: \"MAJORITY Endorsement\"",
        *endorsement_block,
        "  Capabilities:",
        "    V2_0: true",
        "",
        "Orderer: &OrdererDefaults",
        "  OrdererType: etcdraft",
        "  BatchTimeout: 2s",
        "  BatchSize:",
        "    MaxMessageCount: 10",
    ]
    return "\n".join(lines) + "\n"


def export_collections_json(channel: ChannelConfig, chaincode_id: str) -> str:
    """Render a chaincode's collections as the on-disk JSON config."""
    definition = channel.chaincode(chaincode_id)
    return json.dumps(
        [collection.to_json_dict() for collection in definition.collections], indent=2
    )
