"""Network assembly: channels, collections, the running network, presets."""

from repro.network.channel import DEFAULT_ENDORSEMENT_POLICY, ChannelConfig
from repro.network.collection import ChaincodeDefinition, CollectionConfig
from repro.network.lifecycle import ChaincodeLifecycle, ProposedDefinition
from repro.network.network import FabricNetwork
from repro.network.presets import (
    CHAINCODE,
    CHANNEL,
    COLLECTION,
    PRIVATE_KEY_NAME,
    TestNetwork,
    five_org_network,
    three_org_network,
)

__all__ = [
    "DEFAULT_ENDORSEMENT_POLICY",
    "ChannelConfig",
    "ChaincodeDefinition",
    "ChaincodeLifecycle",
    "ProposedDefinition",
    "CollectionConfig",
    "FabricNetwork",
    "CHAINCODE",
    "CHANNEL",
    "COLLECTION",
    "PRIVATE_KEY_NAME",
    "TestNetwork",
    "five_org_network",
    "three_org_network",
]
