"""The Fabric 2.x chaincode lifecycle: approve-then-commit.

A chaincode definition (name, version, endorsement policy, collection
configs) does not take effect when one org wants it to — organizations
*approve* the definition individually, and it can only be *committed* to
the channel once the approvals satisfy the channel's
``LifecycleEndorsement`` policy (``MAJORITY Endorsement`` by default,
exactly the implicitMeta machinery of Eq. (1)).

Approvals are matched by the definition *digest*: an org that approved a
different endorsement policy or different collection set has approved a
different definition, and its approval does not count — this is how
Fabric forces the consortium to agree on the collection configuration the
paper's attacks and defenses revolve around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.common.errors import ConfigError
from repro.common.hashing import sha256_hex
from repro.common.serialization import canonical_bytes
from repro.network.channel import ChannelConfig
from repro.network.collection import ChaincodeDefinition, CollectionConfig
from repro.policy.implicit_meta import majority_threshold


@dataclass(frozen=True)
class ProposedDefinition:
    """One (name, version, sequence) chaincode definition up for approval."""

    name: str
    version: str
    sequence: int
    endorsement_policy: str
    collections: tuple[CollectionConfig, ...] = ()

    def digest(self) -> str:
        """The content hash approvals are matched on."""
        return sha256_hex(
            canonical_bytes(
                {
                    "name": self.name,
                    "version": self.version,
                    "sequence": self.sequence,
                    "endorsement_policy": self.endorsement_policy,
                    "collections": [c.to_json_dict() for c in self.collections],
                }
            )
        )

    def to_chaincode_definition(self) -> ChaincodeDefinition:
        return ChaincodeDefinition(
            name=self.name,
            endorsement_policy=self.endorsement_policy,
            collections=self.collections,
        )


@dataclass
class LifecycleState:
    """Approvals collected for one chaincode name."""

    proposed: ProposedDefinition
    approvals: dict = field(default_factory=dict)  # msp_id -> digest


class ChaincodeLifecycle:
    """Drives approve/commit for one channel."""

    def __init__(self, channel: ChannelConfig) -> None:
        self._channel = channel
        self._pending: dict[str, LifecycleState] = {}
        self._committed_sequence: dict[str, int] = {}

    # -- step 1: any org proposes/approves a definition -------------------
    def approve_for_org(
        self,
        msp_id: str,
        name: str,
        version: str,
        sequence: int,
        endorsement_policy: Optional[str] = None,
        collections: Iterable[CollectionConfig] = (),
    ) -> ProposedDefinition:
        """Record ``msp_id``'s approval of a definition.

        The first approval fixes the *reference* proposal tracked for the
        name+sequence; later approvals with a different digest are
        recorded but will not count toward committing the reference.
        """
        if not self._channel.msp_registry.is_known(msp_id):
            raise ConfigError(f"unknown organization {msp_id!r}")
        expected_sequence = self._committed_sequence.get(name, 0) + 1
        if sequence != expected_sequence:
            raise ConfigError(
                f"chaincode {name!r} requires sequence {expected_sequence}, got {sequence}"
            )
        proposal = ProposedDefinition(
            name=name,
            version=version,
            sequence=sequence,
            endorsement_policy=endorsement_policy
            or self._channel.default_endorsement_policy,
            collections=tuple(collections),
        )
        state = self._pending.get(name)
        if state is None or state.proposed.sequence != sequence:
            state = LifecycleState(proposed=proposal)
            self._pending[name] = state
        state.approvals[msp_id] = proposal.digest()
        return proposal

    # -- step 2: readiness check (the `checkcommitreadiness` equivalent) -----
    def check_commit_readiness(self, name: str) -> dict:
        """Which orgs have approved the reference definition."""
        state = self._pending.get(name)
        if state is None:
            raise ConfigError(f"no pending definition for chaincode {name!r}")
        reference = state.proposed.digest()
        return {
            msp_id: state.approvals.get(msp_id) == reference
            for msp_id in self._channel.msp_ids()
        }

    def approvals_needed(self) -> int:
        """MAJORITY over the channel's orgs (Eq. (1) threshold)."""
        return majority_threshold(len(self._channel.msp_ids()))

    # -- step 3: commit ---------------------------------------------------------
    def commit(self, name: str) -> ChaincodeDefinition:
        """Commit the reference definition once approvals reach MAJORITY."""
        state = self._pending.get(name)
        if state is None:
            raise ConfigError(f"no pending definition for chaincode {name!r}")
        readiness = self.check_commit_readiness(name)
        approved = sum(1 for ok in readiness.values() if ok)
        if approved < self.approvals_needed():
            dissent = sorted(msp for msp, ok in readiness.items() if not ok)
            raise ConfigError(
                f"chaincode {name!r} not ready to commit: {approved} approval(s), "
                f"need {self.approvals_needed()} (missing/mismatched: {dissent})"
            )
        definition = state.proposed.to_chaincode_definition()
        if name in self._channel.chaincodes:
            # Upgrade: replace the agreed definition in place.
            del self._channel.chaincodes[name]
        self._channel.deploy_chaincode(
            name,
            endorsement_policy=definition.endorsement_policy,
            collections=definition.collections,
        )
        self._committed_sequence[name] = state.proposed.sequence
        del self._pending[name]
        return self._channel.chaincode(name)

    def committed_sequence(self, name: str) -> int:
        return self._committed_sequence.get(name, 0)
